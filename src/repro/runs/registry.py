"""Persistent run registry: archive runs, find them again, prune them.

PR 1 made a run observable while the process lives; this module makes
it durable. A recorded run becomes a directory under ``.repro/runs``::

    .repro/runs/<id>/
        manifest.json     # fingerprint, environment, summary, metrics
        trace.jsonl       # per-iteration records (save_trace format)
        timeseries.json   # per-iteration arrays (RunResult.timeseries)
        ledger.json       # per-decision explainability ledger, when the
                          # policy recorded one (repro.obs.ledger)

The manifest's **fingerprint** has two halves with different jobs:

* ``workload`` — engine, algorithm, graph, GPUs, partitioner, solver,
  cost model, and seeds. Two runs are *commensurable* (diffable) only
  when these match exactly; the virtual clock is deterministic given
  them.
* ``provenance`` — git SHA, package versions, platform. Recorded so a
  regression can be traced to a commit, but never a diff precondition:
  comparing across commits is the entire point of ``runs diff``.

Everything in a manifest is plain JSON written with sorted keys, so
identical runs produce identical bytes and diffs are deterministic.
"""

from __future__ import annotations

import hashlib
import json
import platform
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import __version__, config
from repro.errors import RunRegistryError
from repro.runtime.metrics import RunResult
from repro.runtime.trace import load_trace, save_trace

__all__ = [
    "RUN_SCHEMA",
    "DEFAULT_RUNS_ROOT",
    "RunRegistry",
    "workload_fingerprint",
    "provenance_fingerprint",
    "environment_info",
]

RUN_SCHEMA = "repro-run/1"
DEFAULT_RUNS_ROOT = ".repro/runs"

MANIFEST_NAME = "manifest.json"
TRACE_NAME = "trace.jsonl"
TIMESERIES_NAME = "timeseries.json"
LEDGER_NAME = "ledger.json"

#: Workload keys that must match for two runs to be comparable.
WORKLOAD_KEYS = (
    "engine",
    "algorithm",
    "graph",
    "num_gpus",
    "partitioner",
    "solver",
    "cost_model",
    "seed",
    "partition_seed",
    "amortize",
)


def _git_sha() -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def workload_fingerprint(
    engine: str,
    algorithm: str,
    graph: str,
    num_gpus: int,
    partitioner: str = "random",
    solver: str = "greedy",
    cost_model: str = "default",
    seed: int = config.DEFAULT_SEED,
    partition_seed: int = 0,
    amortize: bool = True,
    chaos: str = "none",
    topology: str = "default",
) -> Dict[str, object]:
    """The identity half of a run fingerprint (diff precondition).

    ``chaos`` is the injected fault scenario's name (``"none"`` on
    healthy runs): a chaos run and a healthy run of the same workload
    are *not* commensurable. The key is omitted on healthy runs so
    their fingerprints stay comparable with manifests recorded before
    fault injection existed. ``topology`` works the same way: a
    cluster selector (``nodes=2x4``) changes virtual time, so it joins
    the fingerprint, but the default single-node shape omits the key
    to stay comparable with manifests recorded before multi-node
    support existed.
    """
    fingerprint: Dict[str, object] = {
        "engine": str(engine),
        "algorithm": str(algorithm),
        "graph": str(graph),
        "num_gpus": int(num_gpus),
        "partitioner": str(partitioner),
        "solver": str(solver),
        "cost_model": str(cost_model),
        "seed": int(seed),
        "partition_seed": int(partition_seed),
        "amortize": bool(amortize),
    }
    if str(chaos) != "none":
        fingerprint["chaos"] = str(chaos)
    if str(topology) != "default":
        fingerprint["topology"] = str(topology)
    return fingerprint


def provenance_fingerprint() -> Dict[str, str]:
    """The provenance half: where these numbers came from."""
    import numpy
    try:
        import scipy
        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep today
        scipy_version = "absent"
    return {
        "git_sha": _git_sha(),
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
    }


def environment_info() -> Dict[str, str]:
    """Host description stored alongside a run (informational only)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
    }


def _json_stable(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class RunRegistry:
    """Directory-backed store of recorded runs.

    Parameters
    ----------
    root:
        Registry directory; defaults to ``.repro/runs`` under the
        current working directory. Created lazily on first record.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self._root = Path(root or DEFAULT_RUNS_ROOT)

    @property
    def root(self) -> Path:
        """The registry directory."""
        return self._root

    # -- recording ------------------------------------------------------
    def record_result(
        self,
        result: RunResult,
        workload: Dict[str, object],
        metrics: Optional[Dict] = None,
        notes: str = "",
    ) -> str:
        """Archive one finished run; returns its registry id.

        ``workload`` should come from :func:`workload_fingerprint`;
        ``metrics`` is a :meth:`MetricsRegistry.snapshot` (optional).
        """
        from repro.cli import result_summary  # local: cli imports runs

        files = [MANIFEST_NAME, TRACE_NAME, TIMESERIES_NAME]
        ledger = getattr(result, "ledger", None)
        if ledger is not None:
            files.append(LEDGER_NAME)
        manifest = {
            "schema": RUN_SCHEMA,
            "kind": "run",
            "created_unix": time.time(),
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "fingerprint": {
                "workload": dict(workload),
                "provenance": provenance_fingerprint(),
            },
            "environment": environment_info(),
            "summary": result_summary(result),
            "metrics": dict(metrics or {}),
            "files": files,
        }
        if notes:
            manifest["notes"] = notes
        run_dir = self._new_run_dir(manifest)
        manifest["id"] = run_dir.name
        (run_dir / MANIFEST_NAME).write_text(_json_stable(manifest))
        save_trace(result, run_dir / TRACE_NAME)
        (run_dir / TIMESERIES_NAME).write_text(
            _json_stable(result.timeseries())
        )
        if ledger is not None:
            (run_dir / LEDGER_NAME).write_text(
                _json_stable(ledger.as_dict())
            )
        return run_dir.name

    def record_bench(self, report: Dict, notes: str = "") -> str:
        """Archive a ``repro bench`` report as a bench-kind manifest.

        ``runs diff`` on two bench manifests delegates to the
        perfharness comparison (same noise guards as the CI gate).
        """
        manifest = {
            "schema": RUN_SCHEMA,
            "kind": "bench",
            "created_unix": time.time(),
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "fingerprint": {
                "workload": {"bench_schema": report.get("schema")},
                "provenance": provenance_fingerprint(),
            },
            "environment": environment_info(),
            "report": dict(report),
            "files": [MANIFEST_NAME],
        }
        if notes:
            manifest["notes"] = notes
        run_dir = self._new_run_dir(manifest, slug="bench")
        manifest["id"] = run_dir.name
        (run_dir / MANIFEST_NAME).write_text(_json_stable(manifest))
        return run_dir.name

    def _new_run_dir(self, manifest: Dict, slug: str = "") -> Path:
        if not slug:
            workload = manifest["fingerprint"]["workload"]
            slug = "-".join(str(workload[key]) for key in
                            ("engine", "algorithm", "graph"))
            slug += f"-{workload['num_gpus']}gpu"
        stamp = time.strftime("%Y%m%d-%H%M%S")
        digest = hashlib.sha1(
            _json_stable(manifest).encode()
        ).hexdigest()[:6]
        self._root.mkdir(parents=True, exist_ok=True)
        candidate = self._root / f"{stamp}-{slug}-{digest}"
        counter = 0
        while candidate.exists():
            counter += 1
            candidate = self._root / f"{stamp}-{slug}-{digest}.{counter}"
        candidate.mkdir()
        return candidate

    # -- lookup ---------------------------------------------------------
    def ids(self) -> List[str]:
        """Recorded run ids, oldest first."""
        return [m["id"] for m in self.manifests()]

    def manifests(self) -> List[Dict]:
        """All manifests, sorted oldest first (broken ones skipped)."""
        if not self._root.is_dir():
            return []
        loaded = []
        for path in sorted(self._root.iterdir()):
            manifest_path = path / MANIFEST_NAME
            if not manifest_path.is_file():
                continue
            try:
                manifest = json.loads(manifest_path.read_text())
            except json.JSONDecodeError:
                continue
            if manifest.get("schema") == RUN_SCHEMA:
                loaded.append(manifest)
        loaded.sort(key=lambda m: (m.get("created_unix", 0.0),
                                   m.get("id", "")))
        return loaded

    def resolve(self, ref: str) -> Path:
        """Run directory for a reference.

        Accepts a run id or unique prefix, ``latest``/``last``, or a
        filesystem path (a run directory or its ``manifest.json``) —
        the latter lets committed reference manifests live outside the
        registry, e.g. under ``benchmarks/reference/``.
        """
        path = Path(ref)
        if path.is_file() and path.name == MANIFEST_NAME:
            return path.parent
        if path.is_dir() and (path / MANIFEST_NAME).is_file():
            return path
        manifests = self.manifests()
        if ref in ("latest", "last"):
            if not manifests:
                raise RunRegistryError(
                    f"no runs recorded under {self._root}"
                )
            return self._root / manifests[-1]["id"]
        matches = [m["id"] for m in manifests
                   if m["id"] == ref or m["id"].startswith(ref)
                   or ref in m["id"]]
        exact = [m for m in matches if m == ref]
        if exact:
            return self._root / exact[0]
        if len(matches) == 1:
            return self._root / matches[0]
        if len(matches) > 1:
            raise RunRegistryError(
                f"ambiguous run reference {ref!r}: matches "
                f"{', '.join(matches)}"
            )
        raise RunRegistryError(
            f"unknown run reference {ref!r} (registry: {self._root}, "
            f"{len(manifests)} runs recorded)"
        )

    def load_manifest(self, ref: str) -> Dict:
        """Manifest of one run (see :meth:`resolve` for references)."""
        manifest_path = self.resolve(ref) / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise RunRegistryError(
                f"{manifest_path}: corrupt manifest ({exc.msg})"
            ) from exc
        if manifest.get("schema") != RUN_SCHEMA:
            raise RunRegistryError(
                f"{manifest_path}: unsupported manifest schema "
                f"{manifest.get('schema')!r} (expected {RUN_SCHEMA})"
            )
        return manifest

    def load_run_trace(self, ref: str) -> Tuple[Dict, List[Dict]]:
        """``(header, iteration_records)`` of a recorded run's trace."""
        run_dir = self.resolve(ref)
        trace_path = run_dir / TRACE_NAME
        if not trace_path.is_file():
            raise RunRegistryError(
                f"{run_dir.name}: no archived trace "
                f"({TRACE_NAME} missing)"
            )
        return load_trace(trace_path)

    def load_timeseries(self, ref: str) -> Dict[str, list]:
        """Per-iteration arrays of a recorded run."""
        path = self.resolve(ref) / TIMESERIES_NAME
        if not path.is_file():
            raise RunRegistryError(
                f"{self.resolve(ref).name}: no archived timeseries"
            )
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise RunRegistryError(
                f"{path}: corrupt timeseries ({exc.msg})"
            ) from exc

    def load_ledger(self, ref: str) -> Dict:
        """Archived decision-ledger payload of a recorded run.

        Returns the raw ``repro-ledger/1`` dict (feed it to
        :meth:`repro.obs.ledger.Ledger.from_dict` to replay it).
        Raises :class:`RunRegistryError` when the run recorded no
        ledger (stateless policy, or recording disabled) or the file
        is corrupt.
        """
        run_dir = self.resolve(ref)
        path = run_dir / LEDGER_NAME
        if not path.is_file():
            raise RunRegistryError(
                f"{run_dir.name}: no archived decision ledger "
                f"({LEDGER_NAME} missing — stateless policy or "
                f"recording disabled)"
            )
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise RunRegistryError(
                f"{path}: corrupt ledger ({exc.msg})"
            ) from exc

    # -- maintenance ----------------------------------------------------
    def gc(self, keep: int = 20, dry_run: bool = False) -> List[str]:
        """Delete all but the ``keep`` newest runs; returns removed ids."""
        if keep < 0:
            raise RunRegistryError(f"gc keep must be >= 0, got {keep}")
        manifests = self.manifests()
        doomed = manifests[:max(len(manifests) - keep, 0)]
        removed = []
        for manifest in doomed:
            run_dir = self._root / manifest["id"]
            if not dry_run:
                shutil.rmtree(run_dir)
            removed.append(manifest["id"])
        return removed
