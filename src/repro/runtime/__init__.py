"""Distributed BSP runtime: frontiers, schedulers, engine, metrics."""

from repro.runtime.frontier import Frontier
from repro.runtime.metrics import IterationRecord, RunResult, TimeBreakdown
from repro.runtime.scheduler import (
    IterationPlan,
    RunContext,
    Scheduler,
    StaticScheduler,
    WorkChunk,
)
from repro.runtime.bsp import BSPEngine, EngineOptions
from repro.runtime.trace import (
    load_trace,
    render_timeline,
    save_trace,
    trace_records,
    utilization_report,
)

__all__ = [
    "Frontier",
    "TimeBreakdown",
    "IterationRecord",
    "RunResult",
    "WorkChunk",
    "IterationPlan",
    "RunContext",
    "Scheduler",
    "StaticScheduler",
    "BSPEngine",
    "EngineOptions",
    "trace_records",
    "save_trace",
    "load_trace",
    "render_timeline",
    "utilization_report",
]
