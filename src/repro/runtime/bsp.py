"""The BSP engine: executes GAS algorithms and charges virtual time.

One :meth:`BSPEngine.run` call plays the role of the paper's Figure 5
workflow: partition-resident fragments, a coordinator that synchronizes
workers each superstep, a pluggable *stealing arbitrator* (the
:class:`~repro.runtime.scheduler.Scheduler`), and per-iteration timing
records.

The engine guarantees a strict separation the paper relies on and our
metamorphic tests verify: the scheduler affects only *where* work runs
(and therefore time), never *what* is computed — algorithm steps are
executed on the global state regardless of the plan.

Timing of one iteration (see DESIGN.md §5 for constants)::

    busy_j   = sum over chunks of worker j of
                 edges * g*(chunk features)          # compute
               + (edges - hub) * comm(home_i, j)     # remote/local access
               + hub * comm(j, j)                    # hub-cache hits
               + kernel launch per chunk
               + frontier-status migration for stolen chunks
    critical = max over active workers of busy_j
    wall     = critical + serialization + sync(m) + decision overhead

Bucket attribution sums exactly to the wall time: ``compute`` and
``communication`` split the critical path by the active workers' mean
compute/comm/stall shares (stall counts as communication, as in the
paper's breakdown), and the rest go to their own buckets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import numpy as np

from repro import config
from repro.errors import DegradedModeError, EngineError
from repro.graph.csr import CSRGraph
from repro.hardware.spec import MachineSpec
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.obs.export import emit_iteration
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.base import Partition
from repro.runtime.frontier import Frontier
from repro.runtime.metrics import IterationRecord, RunResult, TimeBreakdown
from repro.runtime.scheduler import (
    IterationPlan,
    RunContext,
    Scheduler,
    StaticScheduler,
)

if TYPE_CHECKING:  # avoid a runtime<->algorithms import cycle
    from repro.algorithms.base import GASAlgorithm
    from repro.chaos.controller import ChaosController, FaultEvent

__all__ = ["EngineOptions", "BSPEngine"]


@dataclass
class EngineOptions:
    """Engine-level switches (the "+opt" knobs of Exp-5).

    Attributes
    ----------
    aggregate_messages:
        Early message aggregation: serialize one message per distinct
        remote destination instead of one per cross edge.
    direction_optimized_bfs:
        Push/pull switching for BFS [Beamer]: when the frontier's
        out-edges exceed ``|E| / bfs_alpha`` an iteration scans the
        in-edges of unvisited vertices instead. A *common* intra-GPU
        optimization in the paper's sense (both Gunrock and GUM enable
        it under "+opt").
    bfs_alpha:
        Pull-mode threshold divisor for direction optimization.
    kernel_per_chunk:
        Charge a kernel launch per work chunk (stolen chunks run in a
        separate kernel — Section V, Step 4).
    id_conversion_ns_per_vertex:
        Global-to-local vertex id translation cost, charged per active
        frontier vertex into the ``overhead`` bucket.
    max_iterations:
        Safety bound; exceeding it marks the run unconverged.
    backend:
        Execution backend (``serial`` or ``shmem``): which host
        resources physically run the supersteps. Never affects
        algorithm outputs or virtual time — see :mod:`repro.backend`.
    """

    aggregate_messages: bool = True
    direction_optimized_bfs: bool = True
    bfs_alpha: float = 8.0
    kernel_per_chunk: bool = True
    id_conversion_ns_per_vertex: float = 2.0
    max_iterations: int = 200_000
    backend: str = "serial"


class BSPEngine:
    """Bulk-synchronous engine over a virtual multi-GPU machine.

    Parameters
    ----------
    topology:
        Machine layout (also fixes the number of workers).
    scheduler:
        Work-assignment policy; defaults to :class:`StaticScheduler`.
    machine:
        Device/sync spec overrides.
    options:
        Engine switches.
    name:
        Engine label in results (benchmarks use "gunrock", "gum", ...).
    tracer:
        Observability span sink; defaults to the zero-overhead null
        tracer.
    metrics:
        Counter/gauge/histogram registry; defaults to the null
        registry.
    chaos:
        Optional fault-injection controller
        (:class:`~repro.chaos.controller.ChaosController`). With no
        controller — or a controller whose scenario is empty — runs
        are bit-identical to an engine built without the argument.
    """

    def __init__(
        self,
        topology: Topology,
        scheduler: Optional[Scheduler] = None,
        machine: Optional[MachineSpec] = None,
        options: Optional[EngineOptions] = None,
        name: str = "bsp",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        chaos: "Optional[ChaosController]" = None,
    ) -> None:
        self._topology = topology
        self._scheduler = scheduler or StaticScheduler()
        self._machine = machine
        self._timing = TimingModel(topology, machine=machine)
        self._options = options or EngineOptions()
        from repro.backend import make_backend  # lazy: avoids import cycle

        self._backend = make_backend(self._options.backend)
        self._name = name
        self._tracer = tracer or NULL_TRACER
        self._metrics = metrics or NULL_METRICS
        self._chaos = chaos

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The machine this engine simulates."""
        return self._topology

    @property
    def timing(self) -> TimingModel:
        """The engine's ground-truth timing model."""
        return self._timing

    @property
    def scheduler(self) -> Scheduler:
        """The active scheduling policy."""
        return self._scheduler

    @property
    def options(self) -> EngineOptions:
        """Engine switches."""
        return self._options

    @property
    def tracer(self) -> Tracer:
        """The engine's span sink (null when tracing is off)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The engine's metrics registry (null when metrics are off)."""
        return self._metrics

    @property
    def chaos(self) -> "Optional[ChaosController]":
        """The attached fault controller, or ``None``."""
        return self._chaos

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm: "Union[str, GASAlgorithm]",
        max_iterations: Optional[int] = None,
        **params,
    ) -> RunResult:
        """Execute an algorithm to convergence; return the timed result."""
        if isinstance(algorithm, str):
            from repro.algorithms import make_algorithm

            algorithm = make_algorithm(algorithm)
        if partition.graph is not graph:
            raise EngineError("partition was built for a different graph")
        if partition.num_fragments != self._topology.num_gpus:
            raise EngineError(
                f"partition has {partition.num_fragments} fragments but "
                f"machine has {self._topology.num_gpus} GPUs"
            )
        limit = (
            self._options.max_iterations
            if max_iterations is None
            else max_iterations
        )
        num_workers = self._topology.num_gpus

        if self._chaos is not None:
            self._chaos.begin_run(self._topology)
        context = RunContext(
            graph=graph,
            partition=partition,
            timing=self._timing,
            fragment_home=np.arange(num_workers, dtype=np.int64),
            fragment_worker=np.arange(num_workers, dtype=np.int64),
            algorithm_name=algorithm.name,
            tracer=self._tracer,
            metrics=self._metrics,
            chaos=self._chaos,
        )

        # backends need the engine's aggregation switch when deriving
        # message statistics away from the coordinator
        context.extras["aggregate_messages"] = (
            self._options.aggregate_messages
        )

        state = algorithm.init(graph, **params)
        result = RunResult(
            engine=self._name,
            algorithm=algorithm.name,
            graph_name=graph.name,
            num_gpus=num_workers,
            values=state.values,
        )

        # observability self-measurement: host-clock cost of span and
        # metric emission, so result_summary can report what fraction
        # of the run's wall time observability itself consumed — the
        # number the obs.* bench family holds under its <3% budget.
        # Virtual time is never touched: emission happens after an
        # iteration is priced, so streamed and silent runs charge
        # identical virtual clocks.
        run_wall_start = time.perf_counter()
        # the session owns the run's execution resources (worker
        # processes, shared mappings); the finally guarantees they are
        # released even when an iteration raises mid-run
        session = self._backend.open(
            graph, partition, algorithm, state, context
        )
        measure_obs = self._tracer.enabled or self._metrics.enabled
        try:
            with self._tracer.span(
                "run", cat="engine", engine=self._name,
                algorithm=algorithm.name, graph=graph.name,
                num_gpus=num_workers,
            ) as run_span:
                self._scheduler.begin_run(context)
                virtual_clock = 0.0
                prev_group: Optional[int] = None
                while state.frontier and state.iteration < limit:
                    if self._chaos is not None:
                        events = self._chaos.advance(state.iteration)
                        if events:
                            result.obs_seconds += self._apply_faults(
                                events, context, virtual_clock
                            )
                    record = self._run_iteration(
                        graph, partition, algorithm, state, context, session
                    )
                    result.iterations.append(record)
                    result.breakdown.add(record.breakdown)
                    result.real_decision_seconds += (
                        record.real_decision_seconds
                    )
                    if measure_obs:
                        obs_start = time.perf_counter()
                        virtual_clock = emit_iteration(
                            self._tracer, self._metrics, record,
                            virtual_clock, prev_group, engine=self._name,
                        )
                        result.obs_seconds += (
                            time.perf_counter() - obs_start
                        )
                    else:
                        virtual_clock = emit_iteration(
                            self._tracer, self._metrics, record,
                            virtual_clock, prev_group, engine=self._name,
                        )
                    if record.osteal_group_size is not None:
                        prev_group = record.osteal_group_size
                    state.iteration += 1
                decision_stats = self._scheduler.finish_run(context)
                if decision_stats:
                    result.decision_stats = dict(decision_stats)
                run_span.set(iterations=state.iteration,
                             virtual_total_ms=virtual_clock * 1e3)
        finally:
            session.close(state)
        result.backend_stats = session.stats()
        result.ledger = self._scheduler.ledger
        if self._metrics.enabled and result.backend_stats:
            obs_start = time.perf_counter()
            self._publish_backend_metrics(result.backend_stats)
            result.obs_seconds += time.perf_counter() - obs_start
        result.values = state.values
        result.converged = not state.frontier
        if self._chaos is not None:
            result.chaos = self._chaos.stats()
        result.run_wall_seconds = time.perf_counter() - run_wall_start
        return result

    def _publish_backend_metrics(self, stats: Dict[str, object]) -> None:
        """Register the backend's host-side stats as gauges.

        The worker/task/latency numbers used to live only on the JSON
        summary; as registered metrics they reach every surface the
        registry feeds — the snapshot, the Prometheus export, the live
        stream's final snapshot, and the ``repro top`` backend panel.
        """
        gauges = {
            "workers": (
                "backend.workers",
                "worker processes driven by the execution backend",
            ),
            "tasks": (
                "backend.tasks",
                "work-chunk tasks dispatched to backend workers",
            ),
            "startup_seconds": (
                "backend.startup_seconds",
                "host seconds starting the backend worker pool",
            ),
            "dispatch_seconds": (
                "backend.dispatch_seconds",
                "host seconds handing tasks to backend workers",
            ),
            "collect_seconds": (
                "backend.collect_seconds",
                "host seconds folding backend worker results",
            ),
        }
        for key, (name, help) in gauges.items():
            value = stats.get(key)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            self._metrics.gauge(name, help).set(float(value))
        shard = stats.get("shard_cache")
        if isinstance(shard, dict):
            # out-of-core runs: the residency high-water mark is the
            # number the scale.* budget gate scores
            self._metrics.gauge(
                "shard_cache.resident_bytes",
                "bytes of CSR shards currently resident",
            ).set(float(shard.get("resident_bytes", 0)))
            self._metrics.gauge(
                "shard_cache.peak_resident_bytes",
                "high-water resident bytes of the shard cache",
            ).set(float(shard.get("peak_resident_bytes", 0)))

    # ------------------------------------------------------------------
    def _apply_faults(
        self,
        events: "List[FaultEvent]",
        context: RunContext,
        virtual_clock: float,
    ) -> float:
        """Apply newly fired faults to the run, then notify the scheduler.

        The engine owns the machine-level consequences — timing-model
        swap on link damage, fragment eviction on worker death — so
        every scheduler degrades the same way; ``on_fault`` lets a
        stateful policy additionally rebuild its derived structures.
        Returns the host seconds spent emitting fault telemetry (part
        of the run's observability overhead, not of fault handling).
        """
        chaos = self._chaos
        obs_seconds = 0.0
        for event in events:
            if event.kind == "kill_worker":
                dead = int(event.spec.params["worker"])
                heir = int(event.detail["heir"])
                context.dead_workers.add(dead)
                evicted = context.fragment_worker == dead
                context.fragment_worker[evicted] = heir
                chaos.note_evictions(int(np.count_nonzero(evicted)))
            elif event.kind == "degrade_link":
                # re-derive the machine: effective-bandwidth matrix is
                # recomputed so multi-hop steal paths reroute
                context.timing = TimingModel(
                    chaos.topology,
                    machine=self._machine,
                    device_model=self._timing.device_model,
                )
            if self._tracer.enabled or self._metrics.enabled:
                obs_start = time.perf_counter()
                if self._tracer.enabled:
                    self._tracer.instant(
                        f"chaos.{event.kind}",
                        cat="chaos",
                        virtual_ts=virtual_clock,
                        **event.as_dict(),
                    )
                if self._metrics.enabled:
                    self._metrics.counter(
                        "chaos.faults", "injected faults by kind",
                    ).inc(kind=event.kind)
                obs_seconds += time.perf_counter() - obs_start
            self._scheduler.on_fault(event, context)
        return obs_seconds

    # ------------------------------------------------------------------
    def _run_iteration(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm: GASAlgorithm,
        state,
        context: RunContext,
        session,
    ) -> IterationRecord:
        frontier: Frontier = state.frontier
        num_workers = context.num_workers

        # --- distribute the frontier to its data homes ---------------
        fragment_frontiers = frontier.split_by_owner(
            partition.owner, partition.num_fragments
        )
        workloads = np.array(
            [f.work(graph) for f in fragment_frontiers], dtype=np.int64
        )
        workloads = self._effective_workloads(
            graph, partition, algorithm, state, workloads
        )

        # hand the distributed frontier to the execution backend now,
        # so a parallel backend's workers overlap with the plan/pricing
        session.begin_iteration(state.iteration, fragment_frontiers,
                                context)

        # --- plan (the stealing arbitrator) ---------------------------
        wall_start = time.perf_counter()
        plan = self._scheduler.plan(
            state.iteration, fragment_frontiers, workloads, context
        )
        plan.real_decision_seconds = max(
            plan.real_decision_seconds, time.perf_counter() - wall_start
        )
        self._validate_plan(plan, workloads, num_workers,
                            context.dead_workers)

        # --- price the plan with ground-truth costs -------------------
        # Compute cost is priced from the owning fragment's frontier
        # features — the same W_i granularity the paper's c_ij uses.
        # This keeps pricing identical across engines even when the
        # effective workload is decoupled from the frontier (pull-mode
        # BFS, near-far discounts). Features are memoized on the
        # frontier objects, so the scheduler's own feature scan (the
        # GUM arbitrator prices c_ij from the same fragments) is not
        # repeated here.
        fragment_features = [
            f.features(graph) for f in fragment_frontiers
        ]
        busy, compute_part, comm_part = self._price_chunks(
            plan, fragment_features, context, num_workers,
            iteration=state.iteration,
        )
        if self._chaos is not None:
            scale = self._chaos.compute_scale(state.iteration)
            if scale is not None:
                # a slowed worker's kernels stretch; everything else
                # (transfers, sync) is unaffected
                busy = busy + compute_part * (scale - 1.0)
                compute_part = compute_part * scale

        active = sorted(set(plan.active_workers))
        if not active:
            raise EngineError("iteration plan has no active workers")
        active_arr = np.asarray(active, dtype=np.int64)
        critical = float(busy[active_arr].max()) if active else 0.0
        stall = np.zeros(num_workers)
        stall[active_arr] = critical - busy[active_arr]

        # --- messages crossing worker boundaries ----------------------
        serialization, message_transfer = self._message_costs(
            context, frontier, active, session, state.iteration
        )

        sync = context.timing.sync_seconds(len(active)) * self._sync_multiplier(
            algorithm, state
        )
        overhead = (
            plan.decision_seconds
            + frontier.size
            * self._options.id_conversion_ns_per_vertex
            * 1e-9
        )

        breakdown = TimeBreakdown(
            compute=float(compute_part[active_arr].mean()),
            communication=float(
                comm_part[active_arr].mean() + stall[active_arr].mean()
            ) + message_transfer,
            serialization=serialization,
            sync=sync,
            overhead=overhead,
        )

        # --- execute semantics (independent of the plan) ---------------
        state.frontier = session.step(state.iteration, algorithm, graph,
                                      state)

        record = IterationRecord(
            iteration=state.iteration,
            frontier_size=frontier.size,
            frontier_edges=int(workloads.sum()),
            active_workers=active,
            busy_seconds=busy,
            stall_seconds=stall,
            wall_seconds=breakdown.total,
            breakdown=breakdown,
            fsteal_applied=plan.fsteal_applied,
            osteal_group_size=plan.osteal_group_size,
            stolen_edges=plan.stolen_edges,
            real_decision_seconds=plan.real_decision_seconds,
        )
        self._scheduler.observe(record, context)
        return record

    # ------------------------------------------------------------------
    def _price_chunks(
        self,
        plan: IterationPlan,
        fragment_features: list,
        context: RunContext,
        num_workers: int,
        iteration: int = 0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Price every chunk of the plan, vectorized over chunk arrays.

        Returns per-worker ``(busy, compute, comm)`` seconds. The math
        is the per-chunk recurrence from the module docstring; the
        ground-truth ``g*`` is evaluated once per *fragment* (it is a
        deterministic function of the fragment's features), then
        broadcast over that fragment's chunks.
        """
        busy = np.zeros(num_workers)
        compute_part = np.zeros(num_workers)
        comm_part = np.zeros(num_workers)
        chunks = [c for c in plan.chunks if c.edges != 0]
        if not chunks:
            return busy, compute_part, comm_part
        owners = np.array([c.owner for c in chunks], dtype=np.int64)
        workers = np.array([c.worker for c in chunks], dtype=np.int64)
        edges = np.array([c.edges for c in chunks], dtype=np.float64)
        hub_edges = np.array(
            [c.hub_edges for c in chunks], dtype=np.float64
        )
        migrate_bytes = np.array(
            [c.vertices.size for c in chunks], dtype=np.float64
        ) * config.BYTES_PER_VERTEX
        homes = context.fragment_home[owners]
        device = context.timing.device_model
        edge_cost = np.array(
            [device.true_edge_cost(f) for f in fragment_features]
        )
        compute = edges * edge_cost[owners]
        per_edge = context.timing.comm_per_edge_matrix()
        comm = (
            (edges - hub_edges) * per_edge[homes, workers]
            + hub_edges * per_edge[workers, workers]
        )
        stolen = workers != homes
        if np.any(stolen):
            # frontier-status migration: stolen vertex ids + values
            bandwidth_gbps = context.timing.topology \
                .effective_bandwidth_matrix()[homes[stolen], workers[stolen]]
            migrate_seconds = migrate_bytes[stolen] / (bandwidth_gbps * 1e9)
            comm[stolen] += migrate_seconds
            if (self._chaos is not None
                    and self._chaos.flaky_active(iteration)):
                self._charge_flaky_retries(
                    comm, np.flatnonzero(stolen), owners, workers,
                    migrate_seconds, iteration,
                )
        if self._options.kernel_per_chunk:
            compute = compute + context.timing.kernel_launch_seconds(1)
        np.add.at(busy, workers, compute + comm)
        np.add.at(compute_part, workers, compute)
        np.add.at(comm_part, workers, comm)
        return busy, compute_part, comm_part

    def _charge_flaky_retries(
        self,
        comm: np.ndarray,
        stolen_indices: np.ndarray,
        owners: np.ndarray,
        workers: np.ndarray,
        migrate_seconds: np.ndarray,
        iteration: int,
    ) -> None:
        """Charge retry-with-backoff time for failed steal transfers.

        Each stolen chunk's migration fails a deterministic, seeded
        number of times (bounded by the fault's ``max_retries``); every
        failed attempt retransmits the payload and backs off. The chunk
        always completes — chaos charges time, never corrupts state.

        Vectorized over the stolen chunks (one batched draw per
        distinct owner/worker pair instead of a Python loop per chunk);
        draws, counters, and charged seconds are bit-identical to the
        per-chunk formulation — the chaos determinism tests pin this.
        """
        chaos = self._chaos
        fails = chaos.failed_transfer_attempts_batch(
            iteration, owners[stolen_indices], workers[stolen_indices]
        )
        comm[stolen_indices] += chaos.retry_seconds_batch(
            migrate_seconds, fails
        )

    # ------------------------------------------------------------------
    # Hooks for engine models with algorithm-specific behaviour
    # (the Gunrock baseline overrides these; GUM does not).
    # ------------------------------------------------------------------
    def _effective_workloads(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm,
        state,
        workloads: np.ndarray,
    ) -> np.ndarray:
        """Edges actually processed per fragment this iteration.

        The default engine processes the frontier's out-edges, except
        for pull-mode BFS iterations (when enabled). Engine models with
        further algorithm-specific kernels (the Gunrock baseline)
        extend this.
        """
        if (
            algorithm.name == "bfs"
            and self._options.direction_optimized_bfs
        ):
            return self._direction_optimize(graph, partition, state,
                                            workloads)
        return workloads

    def _direction_optimize(
        self,
        graph: CSRGraph,
        partition: Partition,
        state,
        workloads: np.ndarray,
    ) -> np.ndarray:
        """Pull-mode workloads when cheaper than pushing the frontier."""
        push_edges = int(workloads.sum())
        if push_edges <= graph.num_edges / self._options.bfs_alpha:
            return workloads
        unvisited = np.isinf(state.values)
        if not np.any(unvisited):
            return workloads
        in_deg = graph.in_degrees()
        pull_per_fragment = np.zeros_like(workloads)
        np.add.at(
            pull_per_fragment,
            partition.owner[unvisited],
            in_deg[unvisited],
        )
        if int(pull_per_fragment.sum()) >= push_edges:
            return workloads
        return pull_per_fragment.astype(np.int64)

    def _sync_multiplier(self, algorithm, state) -> float:
        """Scale on the per-iteration synchronization cost.

        Multi-phase kernels (e.g. near-far SSSP buckets) synchronize
        more than once per logical iteration.
        """
        return 1.0

    # ------------------------------------------------------------------
    def _message_costs(
        self,
        context: RunContext,
        frontier: Frontier,
        active: list,
        session,
        iteration: int,
    ) -> tuple[float, float]:
        """Price cross-worker messages: (packing, link transfer).

        Packing is the serialization bucket; the transfer itself rides
        the aggregate NVLink bandwidth of the active group and lands in
        the communication bucket. BSP systems may use every link
        (unlike the Groute model's single ring). The message *count*
        comes from the execution backend — every backend derives the
        identical number, in-process via the frontier's memoized gather
        or merged from worker partials.
        """
        if frontier.size == 0:
            return 0.0, 0.0
        num_messages = session.message_count(
            iteration, frontier, self._options.aggregate_messages, context
        )
        if num_messages == 0:
            return 0.0, 0.0
        packing = context.timing.serialization_seconds(num_messages)
        topology = context.timing.topology
        aggregate_gbps = topology.aggregate_bandwidth(active)
        if aggregate_gbps <= 0:
            aggregate_gbps = topology.direct_bandwidth(0, 0)
        transfer = (
            num_messages * config.BYTES_PER_MESSAGE
            / (aggregate_gbps * 1e9)
        )
        return packing, transfer

    def _validate_plan(
        self,
        plan: IterationPlan,
        workloads: np.ndarray,
        num_workers: int,
        dead_workers: Optional[set] = None,
    ) -> None:
        """Reject plans that drop or duplicate work, or use dead GPUs."""
        assigned = np.zeros_like(workloads)
        for chunk in plan.chunks:
            if not 0 <= chunk.worker < num_workers:
                raise EngineError(f"chunk worker {chunk.worker} out of range")
            if dead_workers and chunk.worker in dead_workers:
                raise DegradedModeError(
                    f"iteration plan assigns work to dead worker "
                    f"{chunk.worker}"
                )
            if not 0 <= chunk.owner < workloads.size:
                raise EngineError(f"chunk owner {chunk.owner} out of range")
            assigned[chunk.owner] += chunk.edges
        if not np.array_equal(assigned, workloads):
            raise EngineError(
                "iteration plan does not conserve workload: "
                f"assigned={assigned.tolist()} expected={workloads.tolist()}"
            )
