"""Frontier representation and algebra.

A frontier is the subset of vertices active in one BSP iteration —
the paper's ``f_k`` and the unit of work FSteal redistributes. We keep
frontiers as *sorted unique* ``int64`` arrays: cheap set algebra via
merges, and the sorted order is what Algorithm 1's prefix-sum /
sorted-search vertex selection expects.

Frontiers also memoize their per-graph derived quantities — workload,
Table-I features, and the flattened out-edge gather. Several consumers
touch the same frontier every superstep (the stealing arbitrator, the
engine's plan pricing, the message-cost model, and the algorithm step
itself); the cache makes each derived quantity a once-per-iteration
cost instead of a per-consumer one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.gather import gather_edge_positions

if TYPE_CHECKING:  # features imports nothing from runtime; cycle-safe
    from repro.graph.features import FrontierFeatures

__all__ = ["Frontier"]


class Frontier:
    """A sorted set of active vertices with workload helpers."""

    __slots__ = ("_vertices", "_cache")

    def __init__(self, vertices: np.ndarray | Iterable[int] = ()) -> None:
        array = np.asarray(list(vertices) if not isinstance(
            vertices, np.ndarray) else vertices, dtype=np.int64)
        if array.size:
            array = np.unique(array)
        array.setflags(write=False)
        self._vertices = array
        self._cache: dict = {}

    # ------------------------------------------------------------------
    @staticmethod
    def from_sorted(vertices: np.ndarray) -> "Frontier":
        """Wrap an already-sorted-unique array without re-sorting."""
        frontier = Frontier.__new__(Frontier)
        array = np.ascontiguousarray(vertices, dtype=np.int64)
        array.setflags(write=False)
        frontier._vertices = array
        frontier._cache = {}
        return frontier

    @staticmethod
    def from_mask(mask: np.ndarray) -> "Frontier":
        """Frontier of all vertices where ``mask`` is true."""
        return Frontier.from_sorted(np.flatnonzero(mask).astype(np.int64))

    @staticmethod
    def full(num_vertices: int) -> "Frontier":
        """Frontier containing every vertex (dense algorithms like PR)."""
        return Frontier.from_sorted(np.arange(num_vertices, dtype=np.int64))

    @staticmethod
    def empty() -> "Frontier":
        """The empty frontier."""
        return Frontier.from_sorted(np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> np.ndarray:
        """Read-only sorted vertex array."""
        return self._vertices

    @property
    def size(self) -> int:
        """Number of active vertices."""
        return int(self._vertices.size)

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frontier):
            return NotImplemented
        return np.array_equal(self._vertices, other._vertices)

    def __hash__(self) -> int:  # frontiers are value-like but unhashable
        raise TypeError("Frontier is not hashable")

    def __repr__(self) -> str:
        preview = self._vertices[:8].tolist()
        suffix = "..." if self.size > 8 else ""
        return f"Frontier(size={self.size}, {preview}{suffix})"

    # ------------------------------------------------------------------
    # Pickle support (spawned worker processes receive frontiers):
    # ship only the vertex array — the memo cache pins whole graphs —
    # and restore the read-only invariant on load.
    # ------------------------------------------------------------------
    def __getstate__(self) -> np.ndarray:
        return np.array(self._vertices)

    def __setstate__(self, state: np.ndarray) -> None:
        array = np.ascontiguousarray(state, dtype=np.int64)
        array.setflags(write=False)
        self._vertices = array
        self._cache = {}

    # ------------------------------------------------------------------
    # Memoized per-graph derived quantities
    # ------------------------------------------------------------------
    def _memo(self, key: str, graph: CSRGraph, compute):
        """Per-(key, graph) memo; entries pin the graph they belong to."""
        entry = self._cache.get(key)
        if entry is not None and entry[0] is graph:
            return entry[1]
        value = compute()
        self._cache[key] = (graph, value)
        return value

    def work(self, graph: CSRGraph) -> int:
        """Total out-edges of the frontier — the workload ``l`` of FSteal."""
        if self.size == 0:
            return 0
        return self._memo(
            "work", graph,
            lambda: int(graph.out_degrees(self._vertices).sum()),
        )

    def features(self, graph: CSRGraph) -> "FrontierFeatures":
        """Table-I features of this frontier, computed at most once.

        The arbitrator prices FSteal coefficients from these and the
        engine prices the resulting plan from the *same* objects — one
        feature scan per fragment per superstep, as Exp-3's overhead
        budget requires.
        """
        from repro.graph.features import frontier_features

        return self._memo(
            "features", graph,
            lambda: frontier_features(graph, self._vertices),
        )

    def edge_positions(
        self, graph: CSRGraph
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized :func:`gather_edge_positions` of this frontier.

        Both the algorithm step and the engine's message-cost model
        expand the same frontier; sharing the gather halves the
        per-iteration adjacency traffic.
        """
        return self._memo(
            "edge_positions", graph,
            lambda: gather_edge_positions(graph, self._vertices),
        )

    def gather(
        self, graph: CSRGraph
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Memoized flattened out-edges: (sources, destinations, weights)."""

        def compute():
            sources, positions = self.edge_positions(graph)
            destinations = graph.indices[positions]
            weights = (
                graph.weights[positions]
                if graph.weights is not None else None
            )
            return sources, destinations, weights

        return self._memo("gather", graph, compute)

    def union(self, other: "Frontier") -> "Frontier":
        """Set union."""
        if not self:
            return other
        if not other:
            return self
        return Frontier.from_sorted(
            np.union1d(self._vertices, other._vertices)
        )

    def intersection(self, other: "Frontier") -> "Frontier":
        """Set intersection."""
        return Frontier.from_sorted(
            np.intersect1d(self._vertices, other._vertices,
                           assume_unique=True)
        )

    def difference(self, other: "Frontier") -> "Frontier":
        """Set difference (vertices in self but not other)."""
        return Frontier.from_sorted(
            np.setdiff1d(self._vertices, other._vertices,
                         assume_unique=True)
        )

    def contains(self, vertex: int) -> bool:
        """Membership test via binary search."""
        idx = np.searchsorted(self._vertices, vertex)
        return bool(
            idx < self._vertices.size and self._vertices[idx] == vertex
        )

    def split_by_owner(
        self, owner: np.ndarray, num_fragments: int
    ) -> List["Frontier"]:
        """Partition the frontier by an ownership array.

        Returns one frontier per fragment; their disjoint union equals
        ``self``. This produces the distributed frontier the engines
        and stealing policies operate on.
        """
        if self.size == 0:
            return [Frontier.empty() for __ in range(num_fragments)]
        owners = owner[self._vertices]
        order = np.argsort(owners, kind="stable")
        sorted_vertices = self._vertices[order]
        boundaries = np.searchsorted(
            owners[order], np.arange(num_fragments + 1)
        )
        return [
            Frontier.from_sorted(
                np.sort(sorted_vertices[boundaries[i]: boundaries[i + 1]])
            )
            for i in range(num_fragments)
        ]
