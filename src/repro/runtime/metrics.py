"""Timing records produced by engine runs.

Every engine (GUM, Gunrock model, Groute model) emits the same record
types so benchmark harnesses can compare them directly:

* :class:`TimeBreakdown` — virtual seconds split into the five buckets
  of the paper's Figure 6 discussion (computation, communication,
  serialization, synchronization, overhead).
* :class:`IterationRecord` — one BSP superstep (or async round):
  per-GPU busy/stall times (the Figure 1 / Figure 8 timelines), the
  iteration's wall time, stealing decisions taken.
* :class:`RunResult` — a completed run: final vertex values, iteration
  records, aggregate breakdown, plus real (host) decision time for
  Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["TimeBreakdown", "IterationRecord", "RunResult"]


@dataclass
class TimeBreakdown:
    """Virtual seconds per cost bucket; additive."""

    compute: float = 0.0
    communication: float = 0.0
    serialization: float = 0.0
    sync: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all buckets."""
        return (
            self.compute
            + self.communication
            + self.serialization
            + self.sync
            + self.overhead
        )

    def add(self, other: "TimeBreakdown") -> None:
        """Accumulate another breakdown into this one, in place."""
        self.compute += other.compute
        self.communication += other.communication
        self.serialization += other.serialization
        self.sync += other.sync
        self.overhead += other.overhead

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (seconds) for reporting."""
        return {
            "compute": self.compute,
            "communication": self.communication,
            "serialization": self.serialization,
            "sync": self.sync,
            "overhead": self.overhead,
            "total": self.total,
        }

    def scaled_ms(self) -> Dict[str, float]:
        """Same as :meth:`as_dict` but in milliseconds."""
        return {
            "compute": self.compute * 1e3,
            "communication": self.communication * 1e3,
            "serialization": self.serialization * 1e3,
            "sync": self.sync * 1e3,
            "overhead": self.overhead * 1e3,
            "total": self.total * 1e3,
        }


@dataclass
class IterationRecord:
    """Timing of one superstep/round.

    ``busy_seconds[j]``/``stall_seconds[j]`` describe worker ``j``; a
    worker excluded by OSteal has zero busy time and zero stall (it is
    out of the communication group, not waiting).
    """

    iteration: int
    frontier_size: int
    frontier_edges: int
    active_workers: List[int]
    busy_seconds: np.ndarray
    stall_seconds: np.ndarray
    wall_seconds: float
    breakdown: TimeBreakdown
    fsteal_applied: bool = False
    osteal_group_size: Optional[int] = None
    stolen_edges: int = 0
    real_decision_seconds: float = 0.0

    @property
    def num_active(self) -> int:
        """Number of workers participating in this iteration."""
        return len(self.active_workers)


@dataclass
class RunResult:
    """Everything a finished engine run reports."""

    engine: str
    algorithm: str
    graph_name: str
    num_gpus: int
    values: np.ndarray
    iterations: List[IterationRecord] = field(default_factory=list)
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    converged: bool = True
    real_decision_seconds: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    #: Scheduler-reported run-level decision statistics (plan-cache
    #: hit counters, warm-start accepts, ...); empty for stateless
    #: policies.
    decision_stats: Dict[str, float] = field(default_factory=dict)
    #: Fault-injection summary (scenario name, fired events, eviction
    #: and retry counters) when a chaos controller drove the run;
    #: ``None`` on healthy runs.
    chaos: Optional[Dict[str, object]] = None
    #: Host seconds the run spent inside observability code (span and
    #: metric emission). Zero with both observers disabled.
    obs_seconds: float = 0.0
    #: Host wall-clock seconds of the whole ``run()`` call — the
    #: denominator of ``obs_overhead_pct``.
    run_wall_seconds: float = 0.0
    #: Execution-backend statistics (worker count, task count,
    #: dispatch/collect host seconds) for parallel backends; ``None``
    #: for the in-process serial backend.
    backend_stats: Optional[Dict[str, object]] = None
    #: The scheduler's per-decision explainability ledger (a
    #: ``repro.obs.ledger.Ledger``) when the policy records one;
    #: ``None`` for stateless baselines or when recording is off.
    ledger: Optional[object] = None

    def obs_overhead_pct(self) -> Optional[float]:
        """Observability overhead as a percentage of run wall time.

        ``None`` when the run predates self-measurement (no wall time
        recorded) — old archived manifests stay diffable.
        """
        if self.run_wall_seconds <= 0.0:
            return None
        return 100.0 * self.obs_seconds / self.run_wall_seconds

    @property
    def total_seconds(self) -> float:
        """End-to-end virtual runtime."""
        return self.breakdown.total

    @property
    def total_ms(self) -> float:
        """End-to-end virtual runtime in milliseconds."""
        return self.breakdown.total * 1e3

    @property
    def num_iterations(self) -> int:
        """Number of supersteps/rounds executed."""
        return len(self.iterations)

    def busy_matrix(self) -> np.ndarray:
        """``(num_iterations, num_gpus)`` per-GPU busy seconds.

        This is the data behind the paper's Figure 1 and Figure 8
        timelines.
        """
        if not self.iterations:
            return np.zeros((0, self.num_gpus))
        return np.stack([rec.busy_seconds for rec in self.iterations])

    def stall_matrix(self) -> np.ndarray:
        """``(num_iterations, num_gpus)`` per-GPU stall seconds."""
        if not self.iterations:
            return np.zeros((0, self.num_gpus))
        return np.stack([rec.stall_seconds for rec in self.iterations])

    def group_size_series(self) -> List[int]:
        """Active-worker count per iteration (Figure 9's switching plot)."""
        return [rec.num_active for rec in self.iterations]

    def timeseries(self) -> Dict[str, list]:
        """Per-iteration arrays (JSON-friendly), one entry per superstep.

        This is the run registry's archived shape: small enough to keep
        for every recorded run, rich enough to reconstruct the Figure 1
        / Figure 9 plots and feed ``runs diff`` without reloading the
        full trace.
        """
        records = self.iterations
        busy = self.busy_matrix()
        stall = self.stall_matrix()
        active_mask = np.zeros(busy.shape, dtype=bool)
        for row, rec in enumerate(records):
            active_mask[row, rec.active_workers] = True
        critical = np.where(active_mask, busy, -np.inf).max(axis=1) \
            if records else np.zeros(0)
        return {
            "iteration": [rec.iteration for rec in records],
            "wall_ms": [rec.wall_seconds * 1e3 for rec in records],
            "frontier_size": [rec.frontier_size for rec in records],
            "frontier_edges": [rec.frontier_edges for rec in records],
            "num_active": [rec.num_active for rec in records],
            "group_size": [rec.osteal_group_size for rec in records],
            "stolen_edges": [rec.stolen_edges for rec in records],
            "fsteal": [bool(rec.fsteal_applied) for rec in records],
            "critical_busy_ms": (critical * 1e3).tolist(),
            "mean_busy_ms": [
                float(busy[row, rec.active_workers].mean()) * 1e3
                for row, rec in enumerate(records)
            ],
            "mean_stall_ms": [
                float(stall[row, rec.active_workers].mean()) * 1e3
                for row, rec in enumerate(records)
            ],
        }

    def stall_fraction(self) -> float:
        """Aggregate fraction of worker-time spent stalled.

        ``sum(stall) / sum(busy + stall)`` over active workers — the
        utilization statistic Exp-3 quotes (72% stall -> 4%).
        """
        busy = 0.0
        stall = 0.0
        for rec in self.iterations:
            active = rec.active_workers
            busy += float(rec.busy_seconds[active].sum())
            stall += float(rec.stall_seconds[active].sum())
        denom = busy + stall
        return stall / denom if denom > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"RunResult({self.engine}/{self.algorithm} on "
            f"{self.graph_name}, {self.num_gpus} GPUs: "
            f"{self.total_ms:.2f} ms, {self.num_iterations} iters)"
        )
