"""Scheduling interface between the BSP engine and stealing policies.

Each iteration, the engine hands the scheduler the *distributed
frontier* (one frontier per fragment, at its data home) and receives an
:class:`IterationPlan`: which worker processes which slice of which
fragment's frontier, which workers are in the communication group, and
what the decision itself cost. The engine prices the plan with the
ground-truth timing model and executes the algorithm step — so a plan
can be slow, but never wrong.

:class:`StaticScheduler` is the no-stealing policy every baseline BSP
system (and "GUM without stealing") uses: each fragment is processed by
the worker that hosts it, and everyone synchronizes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.graph.csr import CSRGraph
from repro.hardware.timing import TimingModel
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.base import Partition
from repro.runtime.frontier import Frontier
from repro.runtime.metrics import IterationRecord

if TYPE_CHECKING:  # chaos imports nothing from runtime, but keep it lazy
    from repro.chaos.controller import ChaosController, FaultEvent

__all__ = ["WorkChunk", "IterationPlan", "RunContext", "Scheduler",
           "StaticScheduler"]


@dataclass
class WorkChunk:
    """A unit of assigned work: one fragment's frontier slice on one worker.

    ``owner`` is the fragment id whose memory holds the adjacency data
    (the ``i`` of the paper's ``c_ij``); ``worker`` is the GPU running
    the kernel (the ``j``). ``hub_edges`` of the total are served from
    the worker's local hub cache and priced as local accesses.
    """

    owner: int
    worker: int
    vertices: np.ndarray
    edges: int
    hub_edges: int = 0


@dataclass
class IterationPlan:
    """Complete work assignment for one superstep."""

    chunks: List[WorkChunk]
    active_workers: List[int]
    decision_seconds: float = 0.0
    real_decision_seconds: float = 0.0
    fsteal_applied: bool = False
    osteal_group_size: Optional[int] = None
    stolen_edges: int = 0
    migrated_vertices: int = 0


@dataclass
class RunContext:
    """Everything a scheduler may consult while planning.

    ``fragment_home`` maps fragment -> the GPU physically holding its
    data (fixed for the whole run); ``fragment_worker`` maps fragment
    -> the GPU currently *responsible* for it (OSteal rewrites this).

    ``tracer``/``metrics`` are the engine's observability hooks —
    schedulers record their decisions through them (null by default,
    so uninstrumented runs pay nothing).

    ``timing`` starts as the engine's ground-truth model but is
    *per-run*: fault injection swaps in a model of the degraded
    machine mid-run. ``chaos`` is the attached fault controller
    (``None`` on healthy runs) and ``dead_workers`` the GPUs evicted
    so far — schedulers must not assign work to them.
    """

    graph: CSRGraph
    partition: Partition
    timing: TimingModel
    fragment_home: np.ndarray
    fragment_worker: np.ndarray
    algorithm_name: str = ""
    extras: dict = field(default_factory=dict)
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = NULL_METRICS
    chaos: "Optional[ChaosController]" = None
    dead_workers: Set[int] = field(default_factory=set)

    @property
    def num_workers(self) -> int:
        """Number of GPUs in the machine."""
        return self.timing.topology.num_gpus


class Scheduler(abc.ABC):
    """Policy deciding who processes what, each iteration."""

    name: str = "abstract"

    #: Per-decision explainability ledger of the current run (a
    #: ``repro.obs.ledger.Ledger``) for policies that record one; the
    #: engine copies it onto ``RunResult.ledger`` after ``finish_run``.
    ledger: Optional[object] = None

    def begin_run(self, context: RunContext) -> None:
        """Called once before the first iteration."""

    @abc.abstractmethod
    def plan(
        self,
        iteration: int,
        fragment_frontiers: Sequence[Frontier],
        workloads: np.ndarray,
        context: RunContext,
    ) -> IterationPlan:
        """Produce the work assignment for this iteration.

        ``workloads[i]`` is the paper's ``l_i``: active out-edges homed
        on fragment ``i``.
        """

    def observe(self, record: IterationRecord, context: RunContext) -> None:
        """Feedback after the engine priced and ran the iteration.

        The base implementation publishes the scheduler's own decision
        latency — host seconds spent inside :meth:`plan` — to the run's
        metrics registry, so every policy (static or stateful) shows up
        in the live telemetry stream with the same instruments.
        Stateful overrides should call ``super().observe(...)`` to keep
        emitting them.
        """
        metrics = context.metrics
        if metrics is not None and metrics.enabled:
            metrics.histogram(
                "scheduler.decision_seconds",
                "host seconds per plan() decision",
            ).observe(record.real_decision_seconds)
            metrics.timeseries(
                "scheduler.decision_ms_series",
                "per-superstep decision latency (ms)",
            ).append(
                record.real_decision_seconds * 1e3,
                index=record.iteration,
            )

    def on_fault(self, event: "FaultEvent", context: RunContext) -> None:
        """React to an injected fault before the iteration is planned.

        Called by the engine after it has applied the fault's machine
        consequences (``context.timing`` swap, ``fragment_worker``
        eviction, ``dead_workers`` update). Stateful policies rebuild
        whatever they derived from the old machine; the default is a
        no-op, which is correct for stateless schedulers.
        """

    def finish_run(self, context: RunContext) -> Optional[Dict[str, float]]:
        """Called once after the last iteration; optional summary stats.

        Stateful policies report run-level decision statistics here
        (e.g. the GUM arbitrator's plan-cache hit counters); the engine
        attaches the returned mapping to the run result.
        """
        return None


class StaticScheduler(Scheduler):
    """No stealing: each fragment is processed by its current worker.

    All workers join every synchronization round — the behaviour whose
    DLB and LT pathologies the paper's Figure 1 illustrates.
    """

    name = "static"

    def plan(
        self,
        iteration: int,
        fragment_frontiers: Sequence[Frontier],
        workloads: np.ndarray,
        context: RunContext,
    ) -> IterationPlan:
        """Produce this iteration's work assignment."""
        # a fragment can carry work despite an empty frontier (pull-mode
        # engines scan the unvisited side), so gate on workload too
        chunks = [
            WorkChunk(
                owner=fragment,
                worker=int(context.fragment_worker[fragment]),
                vertices=frontier.vertices,
                edges=int(workloads[fragment]),
            )
            for fragment, frontier in enumerate(fragment_frontiers)
            if frontier or workloads[fragment] > 0
        ]
        return IterationPlan(
            chunks=chunks,
            active_workers=[w for w in range(context.num_workers)
                            if w not in context.dead_workers],
        )
