"""Run-trace export and rendering.

Tools for looking *inside* a run the way the paper's Figure 1 and
Figure 8 do:

* :func:`trace_records` / :func:`save_trace` — per-iteration records as
  plain dicts / JSON-lines, for offline analysis;
* :func:`render_timeline` — an ASCII Gantt view of per-GPU busy/stall
  per iteration (the Figure 1 picture in a terminal);
* :func:`utilization_report` — aggregate per-GPU busy/stall shares.

The timeline and utilization views are computed from the span stream of
:func:`repro.obs.export.result_to_spans` — the same records a live
:class:`~repro.obs.tracer.Tracer` emits — so offline reports and
interactive traces can never disagree about what an iteration did.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.obs.export import gpu_track, result_to_spans
from repro.runtime.metrics import RunResult

__all__ = [
    "trace_records",
    "save_trace",
    "load_trace",
    "render_timeline",
    "utilization_report",
]


def trace_records(result: RunResult) -> List[Dict]:
    """One JSON-friendly dict per iteration."""
    records = []
    for record in result.iterations:
        records.append({
            "iteration": record.iteration,
            "frontier_size": record.frontier_size,
            "frontier_edges": record.frontier_edges,
            "active_workers": list(record.active_workers),
            "busy_ms": [round(b * 1e3, 6)
                        for b in record.busy_seconds.tolist()],
            "stall_ms": [round(s * 1e3, 6)
                         for s in record.stall_seconds.tolist()],
            "wall_ms": record.wall_seconds * 1e3,
            "breakdown_ms": record.breakdown.scaled_ms(),
            "fsteal": record.fsteal_applied,
            "group_size": record.osteal_group_size,
            "stolen_edges": record.stolen_edges,
        })
    return records


def save_trace(result: RunResult, path: Union[str, Path]) -> None:
    """Write the run trace as JSON lines (one iteration per line).

    The first line is a run-level header.
    """
    path = Path(path)
    with open(path, "w") as handle:
        header = {
            "engine": result.engine,
            "algorithm": result.algorithm,
            "graph": result.graph_name,
            "num_gpus": result.num_gpus,
            "total_ms": result.total_ms,
            "converged": result.converged,
        }
        handle.write(json.dumps(header) + "\n")
        for record in trace_records(result):
            handle.write(json.dumps(record) + "\n")


def load_trace(path: Union[str, Path]) -> tuple[Dict, List[Dict]]:
    """Read a trace file back: ``(header, iteration_records)``.

    Raises
    ------
    TraceFormatError
        If the file is empty, a line is not valid JSON (truncated
        writes included), or a line is not a JSON object. The message
        carries the file and 1-based line number.
    """
    lines: List[Dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: malformed trace line "
                    f"({exc.msg}): {line.strip()[:80]!r}"
                ) from exc
            if not isinstance(parsed, dict):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(parsed).__name__}"
                )
            lines.append(parsed)
    if not lines:
        raise TraceFormatError(f"{path}: empty trace")
    return lines[0], lines[1:]


def _spans_by_iteration(result: RunResult) -> Dict[int, Dict]:
    """Index the run's span stream: iteration -> its worker spans.

    Returns ``{iteration: {"superstep": SpanRecord,
    "workers": {gpu: {"busy": dur, "stall": dur}}}}``.
    """
    indexed: Dict[int, Dict] = {}
    for span in result_to_spans(result):
        iteration = span.attrs.get("iteration")
        if iteration is None or span.kind != "span":
            continue
        entry = indexed.setdefault(iteration, {"superstep": None,
                                               "workers": {}})
        if span.name == "superstep":
            entry["superstep"] = span
        elif span.name in ("busy", "stall"):
            gpu = span.attrs["gpu"]
            entry["workers"].setdefault(gpu, {})[span.name] = \
                span.virtual_dur
    return indexed


def render_timeline(
    result: RunResult,
    max_iterations: int = 30,
    width: int = 40,
) -> str:
    """ASCII Gantt chart: one row per (iteration, GPU).

    ``#`` is busy time, ``.`` is stall, ``-`` marks a worker evicted by
    OSteal (out of the group, not waiting). Bars are normalized to the
    iteration's critical path — the largest per-GPU busy+stall sum — so
    a fully utilized GPU fills the row and a stalling one shows its
    idle tail at true scale.
    """
    if not result.iterations:
        return "(empty run)"
    indexed = _spans_by_iteration(result)
    step = max(1, result.num_iterations // max_iterations)
    lines = [
        f"{result.engine}/{result.algorithm} on {result.graph_name} — "
        f"'#' busy, '.' stall, '-' evicted",
    ]
    for idx in range(0, result.num_iterations, step):
        record = result.iterations[idx]
        entry = indexed.get(record.iteration, {"workers": {}})
        workers = entry["workers"]
        critical = max(
            (sum(spans.values()) for spans in workers.values()),
            default=0.0,
        )
        critical = max(critical, 1e-12)
        lines.append(
            f"iter {idx:5d}  wall {record.wall_seconds * 1e3:8.3f} ms  "
            f"n={record.num_active}"
        )
        active = set(record.active_workers)
        for gpu in range(result.num_gpus):
            if gpu not in active:
                lines.append(f"  gpu{gpu}  " + "-" * width)
                continue
            spans = workers.get(gpu, {})
            busy_cells = int(
                round(width * spans.get("busy", 0.0) / critical)
            )
            stall_cells = int(
                round(width * spans.get("stall", 0.0) / critical)
            )
            stall_cells = min(stall_cells, width - busy_cells)
            lines.append(
                f"  gpu{gpu}  " + "#" * busy_cells + "." * stall_cells
            )
    return "\n".join(lines)


def utilization_report(result: RunResult) -> Dict[str, object]:
    """Aggregate per-GPU utilization over the whole run.

    Sums the ``busy``/``stall`` worker spans of the run's span stream —
    identical numbers to a Chrome trace of the same run.
    """
    busy = np.zeros(result.num_gpus)
    stall = np.zeros(result.num_gpus)
    tracks = {gpu_track(gpu): gpu for gpu in range(result.num_gpus)}
    for span in result_to_spans(result):
        gpu = tracks.get(span.track)
        if gpu is None or span.kind != "span":
            continue
        if span.name == "busy":
            busy[gpu] += span.virtual_dur
        elif span.name == "stall":
            stall[gpu] += span.virtual_dur
    denom = np.maximum(busy + stall, 1e-12)
    return {
        "per_gpu_busy_ms": (busy * 1e3).round(3).tolist(),
        "per_gpu_stall_ms": (stall * 1e3).round(3).tolist(),
        "per_gpu_utilization": (busy / denom).round(4).tolist(),
        "overall_stall_fraction": result.stall_fraction(),
        "iterations": result.num_iterations,
        "total_ms": result.total_ms,
    }
