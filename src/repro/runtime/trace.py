"""Run-trace export and rendering.

Tools for looking *inside* a run the way the paper's Figure 1 and
Figure 8 do:

* :func:`trace_records` / :func:`save_trace` — per-iteration records as
  plain dicts / JSON-lines, for offline analysis;
* :func:`render_timeline` — an ASCII Gantt view of per-GPU busy/stall
  per iteration (the Figure 1 picture in a terminal);
* :func:`utilization_report` — aggregate per-GPU busy/stall shares.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.runtime.metrics import RunResult

__all__ = [
    "trace_records",
    "save_trace",
    "load_trace",
    "render_timeline",
    "utilization_report",
]


def trace_records(result: RunResult) -> List[Dict]:
    """One JSON-friendly dict per iteration."""
    records = []
    for record in result.iterations:
        records.append({
            "iteration": record.iteration,
            "frontier_size": record.frontier_size,
            "frontier_edges": record.frontier_edges,
            "active_workers": list(record.active_workers),
            "busy_ms": [round(b * 1e3, 6)
                        for b in record.busy_seconds.tolist()],
            "stall_ms": [round(s * 1e3, 6)
                         for s in record.stall_seconds.tolist()],
            "wall_ms": record.wall_seconds * 1e3,
            "breakdown_ms": record.breakdown.scaled_ms(),
            "fsteal": record.fsteal_applied,
            "group_size": record.osteal_group_size,
            "stolen_edges": record.stolen_edges,
        })
    return records


def save_trace(result: RunResult, path: Union[str, Path]) -> None:
    """Write the run trace as JSON lines (one iteration per line).

    The first line is a run-level header.
    """
    path = Path(path)
    with open(path, "w") as handle:
        header = {
            "engine": result.engine,
            "algorithm": result.algorithm,
            "graph": result.graph_name,
            "num_gpus": result.num_gpus,
            "total_ms": result.total_ms,
            "converged": result.converged,
        }
        handle.write(json.dumps(header) + "\n")
        for record in trace_records(result):
            handle.write(json.dumps(record) + "\n")


def load_trace(path: Union[str, Path]) -> tuple[Dict, List[Dict]]:
    """Read a trace file back: ``(header, iteration_records)``."""
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace")
    return lines[0], lines[1:]


def render_timeline(
    result: RunResult,
    max_iterations: int = 30,
    width: int = 40,
) -> str:
    """ASCII Gantt chart: one row per (iteration, GPU).

    ``#`` is busy time, ``.`` is stall, blank is excluded-from-group;
    each bar is normalized to the iteration's critical path.
    """
    if not result.iterations:
        return "(empty run)"
    step = max(1, result.num_iterations // max_iterations)
    lines = [
        f"{result.engine}/{result.algorithm} on {result.graph_name} — "
        f"'#' busy, '.' stall, blank = evicted",
    ]
    for idx in range(0, result.num_iterations, step):
        record = result.iterations[idx]
        active = set(record.active_workers)
        critical = max(
            float(record.busy_seconds.max()), 1e-12
        )
        lines.append(
            f"iter {idx:5d}  wall {record.wall_seconds * 1e3:8.3f} ms  "
            f"n={record.num_active}"
        )
        for gpu in range(result.num_gpus):
            if gpu not in active:
                lines.append(f"  gpu{gpu}  ")
                continue
            busy_cells = int(
                round(width * record.busy_seconds[gpu] / critical)
            )
            stall_cells = max(0, width - busy_cells)
            lines.append(
                f"  gpu{gpu}  " + "#" * busy_cells + "." * stall_cells
            )
    return "\n".join(lines)


def utilization_report(result: RunResult) -> Dict[str, object]:
    """Aggregate per-GPU utilization over the whole run."""
    busy = result.busy_matrix().sum(axis=0)
    stall = result.stall_matrix().sum(axis=0)
    denom = np.maximum(busy + stall, 1e-12)
    return {
        "per_gpu_busy_ms": (busy * 1e3).round(3).tolist(),
        "per_gpu_stall_ms": (stall * 1e3).round(3).tolist(),
        "per_gpu_utilization": (busy / denom).round(4).tolist(),
        "overall_stall_fraction": result.stall_fraction(),
        "iterations": result.num_iterations,
        "total_ms": result.total_ms,
    }
