"""Correctness tests for every vertex program against scipy oracles."""

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, make_algorithm
from repro.algorithms.validate import (
    reference_bfs,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)
from repro.errors import EngineError
from repro.graph import (
    erdos_renyi,
    from_edges,
    path_graph,
    rmat,
    star,
    symmetrize,
    web_graph,
    with_random_weights,
)


def drive(algorithm, graph, max_iters=100_000, **params):
    """Run a vertex program to convergence without an engine."""
    state = algorithm.init(graph, **params)
    while state.frontier and state.iteration < max_iters:
        state.frontier = algorithm.step(graph, state)
        state.iteration += 1
    return state


GRAPH_FACTORIES = {
    "rmat": lambda: rmat(9, 8, seed=1),
    "er": lambda: erdos_renyi(400, 2400, seed=2),
    "web": lambda: web_graph(600, 6, seed=3),
    "path": lambda: path_graph(64),
    "star": lambda: star(50),
    "disconnected": lambda: from_edges(
        [(0, 1), (1, 0), (3, 4)], num_vertices=6
    ),
}


@pytest.mark.parametrize("factory", sorted(GRAPH_FACTORIES))
def test_bfs_matches_reference(factory):
    graph = GRAPH_FACTORIES[factory]()
    source = int(np.argmax(graph.out_degrees()))
    state = drive(make_algorithm("bfs"), graph, source=source)
    assert np.allclose(state.values, reference_bfs(graph, source))


@pytest.mark.parametrize("factory", sorted(GRAPH_FACTORIES))
def test_sssp_matches_reference(factory):
    graph = with_random_weights(GRAPH_FACTORIES[factory](), seed=4)
    source = int(np.argmax(graph.out_degrees()))
    state = drive(make_algorithm("sssp"), graph, source=source)
    assert np.allclose(state.values, reference_sssp(graph, source))


@pytest.mark.parametrize("factory", sorted(GRAPH_FACTORIES))
def test_wcc_matches_reference(factory):
    graph = symmetrize(GRAPH_FACTORIES[factory]())
    state = drive(make_algorithm("wcc"), graph)
    assert np.allclose(state.values, reference_wcc(graph))


@pytest.mark.parametrize("factory", ["rmat", "er", "web", "star"])
def test_pagerank_matches_reference(factory):
    graph = GRAPH_FACTORIES[factory]()
    state = drive(make_algorithm("pr"), graph, tol=1e-11, max_rounds=300)
    ref = reference_pagerank(graph, tol=1e-11, max_rounds=300)
    assert np.abs(state.values - ref).max() < 1e-9


def test_pagerank_rank_mass_conserved():
    graph = symmetrize(rmat(8, 6, seed=0))  # no dangling after symmetrize
    state = drive(make_algorithm("pr"), graph, tol=1e-12, max_rounds=500)
    assert state.values.sum() == pytest.approx(1.0, abs=1e-6)


def test_delta_pagerank_matches_undistributed_pr():
    graph = rmat(9, 8, seed=1)
    pr_state = drive(
        make_algorithm("pr"), graph,
        tol=1e-13, max_rounds=500, redistribute_dangling=False,
    )
    dpr_state = drive(
        make_algorithm("dpr"), graph, epsilon=1e-14, max_rounds=5000
    )
    assert np.abs(pr_state.values - dpr_state.values).max() < 1e-9


def test_delta_pagerank_frontier_shrinks():
    graph = rmat(9, 8, seed=1)
    algorithm = make_algorithm("dpr")
    state = algorithm.init(graph, epsilon=1e-9)
    sizes = []
    while state.frontier and state.iteration < 2000:
        sizes.append(state.frontier.size)
        state.frontier = algorithm.step(graph, state)
        state.iteration += 1
    # the long tail: final active sets are tiny compared to the start
    assert sizes[-1] < sizes[0] / 10


def test_bfs_param_validation(tiny_graph):
    with pytest.raises(EngineError, match="out of range"):
        make_algorithm("bfs").init(tiny_graph, source=99)
    with pytest.raises(EngineError, match="unknown BFS"):
        make_algorithm("bfs").init(tiny_graph, source=0, bogus=1)


def test_sssp_param_validation(tiny_graph):
    with pytest.raises(EngineError, match="out of range"):
        make_algorithm("sssp").init(tiny_graph, source=-1)
    negative = from_edges([(0, 1, -2.0)])
    with pytest.raises(EngineError, match="non-negative"):
        make_algorithm("sssp").init(negative, source=0)


def test_wcc_param_validation(tiny_graph):
    with pytest.raises(EngineError, match="unknown WCC"):
        make_algorithm("wcc").init(tiny_graph, source=0)


def test_pr_param_validation(tiny_graph):
    with pytest.raises(EngineError, match="damping"):
        make_algorithm("pr").init(tiny_graph, damping=1.5)
    with pytest.raises(EngineError, match="unknown PageRank"):
        make_algorithm("pr").init(tiny_graph, alpha=0.9)


def test_registry():
    assert set(ALGORITHMS) == {
        "bfs", "sssp", "wcc", "pr", "dpr", "dsssp", "kcore",
    }
    with pytest.raises(KeyError, match="unknown algorithm"):
        make_algorithm("apsp")


def test_local_step_restricted_to_mask(tiny_graph):
    algorithm = make_algorithm("bfs")
    state = algorithm.init(tiny_graph, source=0)
    # forbid every edge: nothing can activate
    nothing = algorithm.local_step(
        tiny_graph, state, state.frontier,
        np.zeros(tiny_graph.num_edges, dtype=bool),
    )
    assert not nothing
    # allow every edge: same as a full step
    state2 = algorithm.init(tiny_graph, source=0)
    everything = algorithm.local_step(
        tiny_graph, state2, state2.frontier,
        np.ones(tiny_graph.num_edges, dtype=bool),
    )
    state3 = algorithm.init(tiny_graph, source=0)
    full = algorithm.step(tiny_graph, state3)
    assert everything == full


def test_local_step_unsupported_for_pr(tiny_graph):
    algorithm = make_algorithm("pr")
    state = algorithm.init(tiny_graph)
    with pytest.raises(NotImplementedError):
        algorithm.local_step(
            tiny_graph, state, state.frontier,
            np.ones(tiny_graph.num_edges, dtype=bool),
        )


def test_monotonic_flags():
    assert make_algorithm("bfs").monotonic
    assert make_algorithm("sssp").monotonic
    assert make_algorithm("wcc").monotonic
    assert not make_algorithm("pr").monotonic
    assert make_algorithm("wcc").needs_symmetric
    assert make_algorithm("sssp").needs_weights
