"""Tests for the extension algorithms: delta-stepping SSSP and k-core."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.validate import reference_sssp
from repro.errors import EngineError
from repro.graph import (
    erdos_renyi,
    path_graph,
    rmat,
    road_network,
    star,
    symmetrize,
    with_random_weights,
)


def drive(algorithm, graph, limit=50_000, **params):
    state = algorithm.init(graph, **params)
    while state.frontier and state.iteration < limit:
        state.frontier = algorithm.step(graph, state)
        state.iteration += 1
    return state


# ----------------------------------------------------------------------
# Delta-stepping SSSP
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory, seed", [
    (lambda: rmat(9, 8, seed=1), 2),
    (lambda: erdos_renyi(300, 1800, seed=3), 4),
    (lambda: road_network(6, 50, seed=5), 6),
    (lambda: path_graph(40), 7),
])
def test_dsssp_matches_dijkstra(factory, seed):
    graph = with_random_weights(factory(), seed=seed)
    source = int(np.argmax(graph.out_degrees()))
    state = drive(make_algorithm("dsssp"), graph, source=source)
    assert np.allclose(state.values, reference_sssp(graph, source))


@pytest.mark.parametrize("delta", [0.5, 1.0, 4.0, 100.0])
def test_dsssp_any_delta_is_correct(delta):
    graph = with_random_weights(rmat(8, 8, seed=2), seed=3)
    source = int(np.argmax(graph.out_degrees()))
    state = drive(make_algorithm("dsssp"), graph, source=source,
                  delta=delta)
    assert np.allclose(state.values, reference_sssp(graph, source))


def test_dsssp_small_delta_means_more_supersteps():
    graph = with_random_weights(road_network(5, 40, seed=1), seed=2)
    fine = drive(make_algorithm("dsssp"), graph, source=0, delta=0.5)
    coarse = drive(make_algorithm("dsssp"), graph, source=0, delta=50.0)
    assert fine.iteration > coarse.iteration
    assert np.allclose(fine.values, coarse.values)


def test_dsssp_does_less_work_than_bellman_ford():
    """The point of bucketing: fewer redundant relaxations."""
    graph = with_random_weights(road_network(6, 60, seed=4), seed=5)
    source = 0

    def total_relaxations(name, **params):
        algorithm = make_algorithm(name)
        state = algorithm.init(graph, source=source, **params)
        work = 0
        while state.frontier and state.iteration < 50_000:
            work += int(
                graph.out_degrees(state.frontier.vertices).sum()
            )
            state.frontier = algorithm.step(graph, state)
            state.iteration += 1
        return work

    assert total_relaxations("dsssp") <= total_relaxations("sssp")


def test_dsssp_param_validation():
    graph = with_random_weights(rmat(6, 4, seed=0), seed=1)
    algorithm = make_algorithm("dsssp")
    with pytest.raises(EngineError, match="out of range"):
        algorithm.init(graph, source=10**9)
    with pytest.raises(EngineError, match="positive"):
        algorithm.init(graph, source=0, delta=0.0)
    with pytest.raises(EngineError, match="unknown"):
        algorithm.init(graph, source=0, buckets=4)


def test_dsssp_runs_in_engine():
    from repro.hardware import dgx1
    from repro.partition import random_partition
    from repro.runtime import BSPEngine

    graph = with_random_weights(rmat(9, 8, seed=1), seed=2)
    source = int(np.argmax(graph.out_degrees()))
    partition = random_partition(graph, 4, seed=0)
    result = BSPEngine(dgx1(4)).run(graph, partition, "dsssp",
                                    source=source)
    assert result.converged
    assert np.allclose(result.values, reference_sssp(graph, source))


# ----------------------------------------------------------------------
# k-core
# ----------------------------------------------------------------------
def to_networkx(graph):
    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_array()
    G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return G


@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_kcore_matches_networkx(k):
    graph = symmetrize(rmat(9, 6, seed=3))
    state = drive(make_algorithm("kcore"), graph, k=k)
    ours = set(np.flatnonzero(state.values >= 0).tolist())
    expected = set(nx.k_core(to_networkx(graph), k).nodes)
    assert ours == expected


def test_kcore_star():
    graph = star(10)  # every vertex has degree >= 1; no 2-core
    state = drive(make_algorithm("kcore"), graph, k=2)
    assert np.all(state.values == -1.0)
    state1 = drive(make_algorithm("kcore"), graph, k=1)
    assert np.all(state1.values >= 0)


def test_kcore_survivor_degrees_at_least_k():
    graph = symmetrize(erdos_renyi(300, 2400, seed=1))
    state = drive(make_algorithm("kcore"), graph, k=4)
    survivors = state.values >= 0
    if survivors.any():
        assert state.values[survivors].min() >= 4


def test_kcore_param_validation(tiny_graph):
    algorithm = make_algorithm("kcore")
    with pytest.raises(EngineError, match="at least 1"):
        algorithm.init(tiny_graph, k=0)
    with pytest.raises(EngineError, match="unknown"):
        algorithm.init(tiny_graph, k=2, tol=3)


def test_kcore_runs_in_engine():
    import repro

    graph = rmat(9, 6, seed=3)
    result = repro.run(graph, "kcore", num_gpus=4, k=3,
                       gum_config=repro.GumConfig(cost_model="oracle"))
    expected = set(
        nx.k_core(to_networkx(symmetrize(graph)), 3).nodes
    )
    assert set(np.flatnonzero(result.values >= 0).tolist()) == expected
