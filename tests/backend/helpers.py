"""Importable helpers for the backend tests.

These live in a real module (not a test file) so ``spawn`` worker
processes can unpickle instances by qualified name.
"""

from repro.algorithms.bfs import BFS


class FailingMergeBFS(BFS):
    """BFS whose coordinator-side merge raises after a few iterations.

    The workers' ``fragment_step`` is untouched, so the failure lands
    mid-iteration in the coordinator — exactly where the shmem
    session's cleanup contract has to hold.
    """

    name = "failing-bfs"

    def __init__(self, fail_at_iteration: int = 3) -> None:
        super().__init__()
        self.fail_at_iteration = fail_at_iteration
        self.merges = 0

    def merge_fragment_rows(self, graph, state, rows):
        self.merges += 1
        if state.iteration >= self.fail_at_iteration:
            raise RuntimeError("injected mid-iteration failure")
        return super().merge_fragment_rows(graph, state, rows)


class FailingStepBFS(BFS):
    """BFS whose serial step raises — exercises the serial-fallback
    cleanup path of both backends."""

    name = "failing-step-bfs"

    supports_fragment_step = False

    def __init__(self, fail_at_iteration: int = 3) -> None:
        super().__init__()
        self.fail_at_iteration = fail_at_iteration

    def step(self, graph, state):
        if state.iteration >= self.fail_at_iteration:
            raise RuntimeError("injected mid-iteration failure")
        return super().step(graph, state)
