"""Serial vs shmem: bit-identical outputs and virtual time.

The execution backend is a host-resource decision — *which* processes
crunch the arrays — and must never leak into results. These tests run
the same workload under both backends (the shmem side really spawns
worker processes, so this doubles as the ``spawn`` start-method
equivalence test) and require the algorithm values, the virtual-time
totals, and every per-iteration virtual wall clock to match exactly.
"""

import numpy as np
import pytest

import repro
from repro.backend.shared import live_block_names
from repro.errors import EngineError
from repro.graph import datasets


def run_pair(algorithm, engine="gum", num_gpus=4, **params):
    graph = datasets.load("TX")
    serial = repro.run(graph, algorithm, engine=engine,
                       num_gpus=num_gpus, backend="serial", **params)
    shmem = repro.run(graph, algorithm, engine=engine,
                      num_gpus=num_gpus, backend="shmem", **params)
    return serial, shmem


def assert_equivalent(serial, shmem):
    assert np.array_equal(serial.values, shmem.values)
    assert serial.total_ms == shmem.total_ms  # bitwise, not approx
    assert serial.num_iterations == shmem.num_iterations
    assert serial.breakdown.as_dict() == shmem.breakdown.as_dict()
    for a, b in zip(serial.iterations, shmem.iterations):
        assert a.wall_seconds == b.wall_seconds
        assert np.array_equal(a.busy_seconds, b.busy_seconds)
        assert a.active_workers == b.active_workers
    assert live_block_names() == ()


@pytest.mark.parametrize("algorithm,params", [
    ("bfs", {"source": 0}),
    ("sssp", {"source": 0}),
    ("wcc", {}),
])
def test_parallel_step_algorithms_bit_identical(algorithm, params):
    serial, shmem = run_pair(algorithm, **params)
    assert_equivalent(serial, shmem)
    assert serial.backend_stats is None
    stats = shmem.backend_stats
    assert stats["backend"] == "shmem"
    assert stats["parallel_step"] is True
    assert stats["workers"] == 4
    assert stats["tasks"] > 0


def test_serial_fallback_algorithm_bit_identical():
    # float-sum aggregation (PageRank) has no exact merge: the shmem
    # session must fall back to the coordinator's serial superstep
    serial, shmem = run_pair("pr", num_gpus=2)
    assert_equivalent(serial, shmem)
    assert shmem.backend_stats["parallel_step"] is False
    assert shmem.backend_stats["tasks"] == 0


def test_plain_bsp_engine_bit_identical():
    serial, shmem = run_pair("bfs", engine="bsp", num_gpus=2, source=0)
    assert_equivalent(serial, shmem)


def test_groute_rejects_non_serial_backend():
    graph = datasets.load("TX")
    with pytest.raises(EngineError, match="BSP-style"):
        repro.run(graph, "wcc", engine="groute", num_gpus=2,
                  backend="shmem")


def test_unknown_backend_rejected():
    graph = datasets.load("TX")
    with pytest.raises(EngineError, match="unknown execution backend"):
        repro.run(graph, "bfs", backend="cuda", source=0)
