"""Lifecycle: no shared-memory blocks or workers survive any exit path.

``/dev/shm`` segments are a classic CI leak: a run that raises
mid-iteration must still unlink every block and reap every worker.
The engine closes its session in a ``finally``; these tests inject
failures on both the parallel-merge and serial-fallback paths and
assert the contract, plus the ``atexit``-backstop registry stays empty
after clean runs.
"""

import multiprocessing

import pytest

from repro.backend.shared import live_block_names
from repro.graph import datasets
from repro.hardware import dgx1
from repro.partition.partitioners import make_partition
from repro.runtime import BSPEngine

from tests.backend.helpers import FailingMergeBFS, FailingStepBFS


def no_backend_workers():
    return not [
        p for p in multiprocessing.active_children()
        if p.name.startswith("repro-shmem-")
    ]


@pytest.fixture()
def workload():
    graph = datasets.load("TX")
    partition = make_partition("random", graph, 2, seed=0)
    return graph, partition


def run_failing(workload, algorithm, backend):
    graph, partition = workload
    from repro.runtime.bsp import EngineOptions

    engine = BSPEngine(dgx1(2), name="bsp",
                       options=EngineOptions(backend=backend))
    with pytest.raises(RuntimeError, match="injected"):
        engine.run(graph, partition, algorithm, source=0)


def test_midrun_exception_releases_blocks_and_workers(workload):
    run_failing(workload, FailingMergeBFS(fail_at_iteration=3), "shmem")
    assert live_block_names() == ()
    assert no_backend_workers()


def test_serial_fallback_exception_releases_blocks(workload):
    # failure on the coordinator's serial-fallback step path: the shmem
    # session has idle workers and shared blocks to reap regardless
    run_failing(workload, FailingStepBFS(fail_at_iteration=3), "shmem")
    assert live_block_names() == ()
    assert no_backend_workers()


def test_serial_backend_never_creates_blocks(workload):
    run_failing(workload, FailingStepBFS(fail_at_iteration=3), "serial")
    assert live_block_names() == ()


def test_session_close_is_idempotent(workload):
    graph, partition = workload
    from repro.algorithms import make_algorithm
    from repro.backend import make_backend
    from repro.runtime.scheduler import RunContext
    import numpy as np

    algorithm = make_algorithm("bfs")
    state = algorithm.init(graph, source=0)
    context = RunContext(
        graph=graph, partition=partition, timing=None,
        fragment_home=np.arange(2, dtype=np.int64),
        fragment_worker=np.arange(2, dtype=np.int64),
        algorithm_name="bfs",
    )
    session = make_backend("shmem").open(
        graph, partition, algorithm, state, context
    )
    assert live_block_names() != ()
    session.close(state)
    session.close(state)  # second close is a no-op
    assert live_block_names() == ()
    assert no_backend_workers()
    # values were copied out of the dying mapping and stay usable
    assert state.values[0] == 0.0
