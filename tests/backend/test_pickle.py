"""Spawn-safety: everything a worker process receives must pickle.

The ``spawn`` start method pickles the worker entry point's arguments
and re-imports modules in a fresh interpreter, so the core runtime
objects need clean pickle round-trips — no closures, no leaked caches,
and the read-only invariants restored on load.
"""

import pickle

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, AlgorithmState, make_algorithm
from repro.backend.shared import SharedArraySpec
from repro.backend.worker import WorkerSpec, WorkerTask
from repro.graph import datasets
from repro.graph.builders import from_edges
from repro.partition.partitioners import make_partition
from repro.runtime.frontier import Frontier
from repro.runtime.scheduler import IterationPlan, WorkChunk


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def weighted_graph():
    return from_edges(
        [(0, 1, 2.0), (1, 2, 0.5), (2, 0, 1.0), (0, 3, 4.0)],
        num_vertices=4, name="pickle-me",
    )


# ----------------------------------------------------------------------
# Frontier
# ----------------------------------------------------------------------
def test_frontier_roundtrip_preserves_vertices_and_readonly():
    frontier = Frontier(np.array([5, 1, 3, 1]))
    clone = roundtrip(frontier)
    assert clone == frontier
    assert clone.vertices.dtype == np.int64
    assert not clone.vertices.flags.writeable


def test_frontier_roundtrip_drops_memo_cache():
    graph = weighted_graph()
    frontier = Frontier(np.array([0, 1]))
    frontier.work(graph)
    frontier.gather(graph)
    assert frontier._cache
    clone = roundtrip(frontier)
    assert clone._cache == {}
    # memoization still functions after the trip
    assert clone.work(graph) == frontier.work(graph)
    assert "work" in clone._cache


def test_empty_frontier_roundtrip():
    clone = roundtrip(Frontier.empty())
    assert clone.size == 0
    assert clone.vertices.dtype == np.int64


# ----------------------------------------------------------------------
# Graph and partition
# ----------------------------------------------------------------------
def test_csr_graph_roundtrip():
    graph = weighted_graph()
    clone = roundtrip(graph)
    assert np.array_equal(clone.indptr, graph.indptr)
    assert np.array_equal(clone.indices, graph.indices)
    assert np.array_equal(clone.weights, graph.weights)
    assert clone.directed == graph.directed
    assert clone.name == graph.name
    # construction invariants survive the trip
    assert not clone.indices.flags.writeable
    assert clone.indptr.dtype == np.int64


def test_partition_roundtrip():
    graph = datasets.load("TX")
    partition = make_partition("random", graph, 4, seed=0)
    clone = roundtrip(partition)
    assert np.array_equal(clone.owner, partition.owner)
    assert clone.num_fragments == partition.num_fragments
    assert np.array_equal(clone.graph.indptr, graph.indptr)


# ----------------------------------------------------------------------
# Plans and state
# ----------------------------------------------------------------------
def test_iteration_plan_roundtrip():
    chunk = WorkChunk(
        owner=1, worker=2,
        vertices=np.array([3, 4], dtype=np.int64),
        edges=7, hub_edges=2,
    )
    plan = IterationPlan(
        chunks=[chunk], active_workers=[1, 2],
        decision_seconds=1e-6, fsteal_applied=True,
        osteal_group_size=2, stolen_edges=7,
    )
    clone = roundtrip(plan)
    assert clone.active_workers == [1, 2]
    assert clone.fsteal_applied and clone.osteal_group_size == 2
    (chunk_clone,) = clone.chunks
    assert (chunk_clone.owner, chunk_clone.worker) == (1, 2)
    assert np.array_equal(chunk_clone.vertices, chunk.vertices)
    assert (chunk_clone.edges, chunk_clone.hub_edges) == (7, 2)


def test_algorithm_state_roundtrip():
    graph = weighted_graph()
    state = make_algorithm("bfs").init(graph, source=0)
    state.aux["scratch"] = np.full(4, np.inf)
    clone = roundtrip(state)
    assert np.array_equal(clone.values, state.values)
    assert clone.frontier == state.frontier
    assert clone.iteration == state.iteration
    assert np.array_equal(clone.aux["scratch"], state.aux["scratch"])


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_every_algorithm_instance_pickles(name):
    clone = roundtrip(make_algorithm(name))
    assert clone.name == name
    assert clone.supports_fragment_step == \
        ALGORITHMS[name].supports_fragment_step


# ----------------------------------------------------------------------
# Worker protocol objects
# ----------------------------------------------------------------------
def test_worker_spec_and_task_roundtrip():
    spec = WorkerSpec(
        indptr=SharedArraySpec("psm_a", "<i8", (5,)),
        indices=SharedArraySpec("psm_b", "<i8", (4,)),
        weights=None,
        owner=SharedArraySpec("psm_c", "<i8", (4,)),
        frontier=SharedArraySpec("psm_d", "<i8", (4,)),
        values=SharedArraySpec("psm_e", "<f8", (4,)),
        partials=SharedArraySpec("psm_f", "<f8", (4, 4)),
        num_fragments=4,
        directed=True,
        graph_name="g",
        algorithm=make_algorithm("bfs"),
    )
    clone = roundtrip(spec)
    assert clone.indptr == spec.indptr
    assert clone.weights is None
    assert clone.algorithm.name == "bfs"

    task = WorkerTask(iteration=3, fragment=1, offset=10, count=5,
                      aggregate=True, relax=True)
    assert roundtrip(task) == task
