"""In-core vs out-of-core: sharded graphs are bit-identical.

Out-of-core storage is a host-memory decision — *where* the CSR
arrays live — and must never leak into results. These tests run the
same workload over the in-core graph and its sharded on-disk twin
(five shards, serial and shmem backends) and require the algorithm
values, the virtual-time totals, and every per-iteration virtual wall
clock to match exactly, while the shard cache's peak residency stays
under its byte budget.
"""

import numpy as np
import pytest

import repro
from repro.backend.shared import live_block_names
from repro.graph import (
    open_graph_sharded,
    rmat,
    save_graph_sharded,
    symmetrize,
    with_random_weights,
)

NUM_SHARDS = 5
RESIDENT_BYTES = 1 << 20


@pytest.fixture(scope="module")
def graphs(tmp_path_factory):
    """In-core graphs plus their sharded on-disk directories."""
    root = tmp_path_factory.mktemp("sharded")
    directed = with_random_weights(rmat(13, 8, seed=7), seed=3)
    # WCC needs a symmetric input: the facade's symmetrize() pass
    # would materialize a sharded graph, so shard the symmetric form
    undirected = symmetrize(directed)
    save_graph_sharded(directed, root / "gd.shards",
                       num_shards=NUM_SHARDS)
    save_graph_sharded(undirected, root / "gs.shards",
                       num_shards=NUM_SHARDS)
    return {
        "directed": (directed, root / "gd.shards"),
        "undirected": (undirected, root / "gs.shards"),
    }


def run_pair(graphs, kind, algorithm, backend="serial", **params):
    in_core, shard_dir = graphs[kind]
    baseline = repro.run(in_core, algorithm, engine="gum", num_gpus=4,
                         backend="serial", **params)
    sharded_graph = open_graph_sharded(
        shard_dir, resident_bytes=RESIDENT_BYTES
    )
    sharded = repro.run(sharded_graph, algorithm, engine="gum",
                        num_gpus=4, backend=backend, **params)
    return baseline, sharded, sharded_graph


def assert_equivalent(baseline, sharded):
    assert np.array_equal(baseline.values, sharded.values)
    assert baseline.total_ms == sharded.total_ms  # bitwise, not approx
    assert baseline.num_iterations == sharded.num_iterations
    assert baseline.breakdown.as_dict() == sharded.breakdown.as_dict()
    for a, b in zip(baseline.iterations, sharded.iterations):
        assert a.wall_seconds == b.wall_seconds
        assert np.array_equal(a.busy_seconds, b.busy_seconds)
        assert a.active_workers == b.active_workers


@pytest.mark.parametrize("kind,algorithm,params", [
    ("directed", "bfs", {"source": 0}),
    ("directed", "sssp", {"source": 0}),
    ("undirected", "wcc", {}),
])
def test_serial_sharded_bit_identical(graphs, kind, algorithm, params):
    baseline, sharded, graph = run_pair(graphs, kind, algorithm,
                                        **params)
    assert_equivalent(baseline, sharded)
    assert graph.num_shards >= 4
    stats = sharded.backend_stats
    assert stats["backend"] == "serial"
    cache = stats["shard_cache"]
    assert cache["loads"] > 0
    assert cache["peak_resident_bytes"] <= RESIDENT_BYTES


def test_pagerank_streaming_superstep_bit_identical(graphs):
    # PR's dense round exercises the per-shard scatter accumulation
    baseline, sharded, __ = run_pair(graphs, "directed", "pr")
    assert_equivalent(baseline, sharded)


def test_shmem_sharded_bit_identical(graphs):
    baseline, sharded, __ = run_pair(graphs, "directed", "bfs",
                                     backend="shmem", source=0)
    assert_equivalent(baseline, sharded)
    stats = sharded.backend_stats
    assert stats["backend"] == "shmem"
    assert stats["parallel_step"] is True
    # the coordinator's own cache stats ride along
    assert stats["shard_cache"]["loads"] > 0
    # sharded runs must not create |E|-sized shared blocks; all other
    # blocks are torn down at close
    assert live_block_names() == ()


def test_in_core_backend_stats_stay_none(graphs):
    in_core, __ = graphs["directed"]
    result = repro.run(in_core, "bfs", engine="gum", num_gpus=4,
                       backend="serial", source=0)
    assert result.backend_stats is None
