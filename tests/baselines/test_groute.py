"""Unit tests for the Groute (asynchronous ring) baseline model."""

import numpy as np
import pytest

from repro.algorithms.validate import (
    reference_bfs,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)
from repro.baselines import GrouteEngine
from repro.errors import EngineError
from repro.graph import road_network, symmetrize, with_random_weights
from repro.hardware import dgx1, single_gpu
from repro.partition import random_partition


def test_bfs_correct(skewed_graph, skewed_partition, source):
    result = GrouteEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )
    assert result.converged
    assert np.allclose(result.values, reference_bfs(skewed_graph, source))
    assert result.engine == "groute"


def test_sssp_correct(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    result = GrouteEngine(dgx1(8)).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert np.allclose(result.values,
                       reference_sssp(skewed_weighted, source))


def test_wcc_correct(skewed_symmetric):
    partition = random_partition(skewed_symmetric, 8, seed=0)
    result = GrouteEngine(dgx1(8)).run(skewed_symmetric, partition, "wcc")
    assert np.allclose(result.values, reference_wcc(skewed_symmetric))


def test_pr_correct_via_sync_path(skewed_graph, skewed_partition):
    result = GrouteEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "pr", tol=1e-10
    )
    ref = reference_pagerank(skewed_graph, tol=1e-10)
    assert np.abs(result.values - ref).max() < 1e-8


def test_pr_pays_extra_work(skewed_graph, skewed_partition):
    cheap = GrouteEngine(dgx1(8), pr_extra_work=1.0).run(
        skewed_graph, skewed_partition, "pr", max_rounds=5
    )
    costly = GrouteEngine(dgx1(8), pr_extra_work=3.0).run(
        skewed_graph, skewed_partition, "pr", max_rounds=5
    )
    assert costly.breakdown.compute > 2.0 * cheap.breakdown.compute
    assert np.allclose(cheap.values, costly.values)


def test_async_converges_in_fewer_rounds(road_graph):
    from repro.baselines import GunrockEngine

    partition = random_partition(road_graph, 8, seed=0)
    groute = GrouteEngine(dgx1(8)).run(road_graph, partition, "wcc")
    bsp = GunrockEngine(dgx1(8)).run(road_graph, partition, "wcc")
    assert groute.num_iterations < bsp.num_iterations
    assert np.allclose(groute.values, bsp.values)


def test_ring_selection(topology8):
    engine = GrouteEngine(topology8)
    ring = engine.ring
    assert sorted(ring) == list(range(8))
    lanes = topology8.lane_matrix
    for idx in range(8):
        assert lanes[ring[idx], ring[(idx + 1) % 8]] > 0


def test_odd_gpu_count_penalized(skewed_weighted, source):
    # 5 GPUs cannot form an NVLink ring: some hops fall back to PCIe
    five = GrouteEngine(dgx1(5))
    assert dgx1(5).find_ring() is None
    from repro.hardware import PCIE_GBPS

    assert five._ring_bandwidth.min() == PCIE_GBPS


def test_single_gpu_few_rounds(skewed_graph, source):
    partition = random_partition(skewed_graph, 1, seed=0)
    result = GrouteEngine(single_gpu()).run(
        skewed_graph, partition, "bfs", source=source
    )
    # local fixed point: the whole BFS completes in one round
    assert result.num_iterations == 1
    assert np.allclose(result.values, reference_bfs(skewed_graph, source))


def test_substep_cap_applies_to_weighted_only():
    graph = road_network(4, 60, seed=1)
    weighted = with_random_weights(graph, seed=2)
    partition = random_partition(graph, 4, seed=0)
    wpartition = random_partition(weighted, 4, seed=0)
    engine = GrouteEngine(dgx1(4), local_substeps=2)
    unweighted_rounds = engine.run(graph, partition, "bfs",
                                   source=0).num_iterations
    weighted_rounds = engine.run(weighted, wpartition, "sssp",
                                 source=0).num_iterations
    # BFS runs to local fixed points (uncapped); SSSP is capped and
    # needs at least as many rounds
    assert weighted_rounds >= unweighted_rounds


def test_partition_mismatch_rejected(skewed_graph):
    partition = random_partition(skewed_graph, 4, seed=0)
    with pytest.raises(EngineError):
        GrouteEngine(dgx1(8)).run(skewed_graph, partition, "bfs", source=0)


def test_breakdown_populated(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    result = GrouteEngine(dgx1(8)).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert result.breakdown.compute > 0
    assert result.breakdown.sync > 0
    assert result.total_seconds == pytest.approx(
        sum(r.wall_seconds for r in result.iterations)
    )
