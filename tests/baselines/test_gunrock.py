"""Unit tests for the Gunrock baseline model."""

import numpy as np
import pytest

from repro.algorithms.validate import reference_bfs, reference_sssp
from repro.baselines import GunrockEngine
from repro.hardware import dgx1, single_gpu
from repro.partition import random_partition


def test_bfs_correct(skewed_graph, skewed_partition, source):
    result = GunrockEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )
    assert np.allclose(result.values, reference_bfs(skewed_graph, source))
    assert result.engine == "gunrock"


def test_sssp_correct_with_near_far(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    result = GunrockEngine(dgx1(8)).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert np.allclose(result.values,
                       reference_sssp(skewed_weighted, source))


def test_near_far_doubles_sync(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    near_far = GunrockEngine(dgx1(8), near_far_sssp=True).run(
        skewed_weighted, partition, "sssp", source=source
    )
    plain = GunrockEngine(dgx1(8), near_far_sssp=False).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert near_far.breakdown.sync == pytest.approx(
        2.0 * plain.breakdown.sync
    )


def test_near_far_discount_decays_with_scale(skewed_weighted, source):
    one = GunrockEngine(single_gpu())
    eight = GunrockEngine(dgx1(8))
    p1 = random_partition(skewed_weighted, 1, seed=0)
    p8 = random_partition(skewed_weighted, 8, seed=0)
    r1 = one.run(skewed_weighted, p1, "sssp", source=source)
    r8 = eight.run(skewed_weighted, p8, "sssp", source=source)
    plain1 = GunrockEngine(single_gpu(), near_far_sssp=False).run(
        skewed_weighted, p1, "sssp", source=source
    )
    plain8 = GunrockEngine(dgx1(8), near_far_sssp=False).run(
        skewed_weighted, p8, "sssp", source=source
    )
    edges = lambda res: sum(r.frontier_edges for r in res.iterations)
    saving1 = 1 - edges(r1) / edges(plain1)
    saving8 = 1 - edges(r8) / edges(plain8)
    assert saving1 > 4 * saving8  # the discount evaporates at scale


def test_near_far_discount_never_drops_fragments(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    result = GunrockEngine(dgx1(8)).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert result.converged


def test_all_workers_always_sync(skewed_graph, skewed_partition, source):
    result = GunrockEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )
    assert all(r.num_active == 8 for r in result.iterations)
    assert all(not r.fsteal_applied for r in result.iterations)


def test_pr_has_no_special_casing(skewed_graph, skewed_partition):
    near_far = GunrockEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "pr", max_rounds=5
    )
    plain = GunrockEngine(dgx1(8), near_far_sssp=False).run(
        skewed_graph, skewed_partition, "pr", max_rounds=5
    )
    assert near_far.total_seconds == pytest.approx(plain.total_seconds)
