"""Unit tests for the reactive (peek-and-grab) stealing baseline."""

import numpy as np
import pytest

from repro.algorithms.validate import reference_sssp
from repro.baselines import PeekStealScheduler
from repro.hardware import dgx1
from repro.partition import random_partition, segmented_partition
from repro.runtime import BSPEngine


def engine(gpus=8, **kwargs):
    return BSPEngine(
        dgx1(gpus), scheduler=PeekStealScheduler(**kwargs),
        name="peeksteal",
    )


# ----------------------------------------------------------------------
# The reactive simulation itself
# ----------------------------------------------------------------------
def simulate(workloads, workers=8, **kwargs):
    scheduler = PeekStealScheduler(**kwargs)
    return scheduler._simulate(
        np.asarray(workloads, dtype=np.int64), workers
    )


def test_simulation_conserves_work():
    workloads = [50_000, 8_000, 4_000, 1_000, 500, 200, 100, 0]
    quotas, steals = simulate(workloads)
    assert np.array_equal(quotas.sum(axis=1), np.asarray(workloads))
    assert np.all(quotas >= 0)
    assert steals > 0


def test_simulation_balances_skew():
    quotas, __ = simulate([80_000, 0, 0, 0, 0, 0, 0, 0])
    per_worker = quotas.sum(axis=0)
    assert per_worker.max() < 0.3 * 80_000  # no worker keeps most of it
    assert per_worker.min() > 0


def test_simulation_leaves_balanced_loads_alone():
    quotas, steals = simulate([10_000] * 8)
    assert steals == 0
    assert np.array_equal(np.diag(quotas), np.full(8, 10_000))


def test_simulation_respects_min_steal():
    __, steals = simulate([100, 0, 0, 0], workers=4,
                          min_steal_edges=1_000)
    assert steals == 0


def test_simulation_terminates_on_pathological_input():
    rng = np.random.default_rng(0)
    for __ in range(10):
        workloads = rng.integers(0, 100_000, 8)
        quotas, steals = simulate(workloads.tolist())
        assert np.array_equal(quotas.sum(axis=1), workloads)
        assert steals < 500  # no ping-pong thrash


# ----------------------------------------------------------------------
# End-to-end behaviour
# ----------------------------------------------------------------------
def test_correctness(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    result = engine().run(skewed_weighted, partition, "sssp",
                          source=source)
    assert result.converged
    assert np.allclose(result.values,
                       reference_sssp(skewed_weighted, source))


def test_reduces_stall_on_skewed_partition(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    reactive = engine().run(skewed_weighted, partition, "sssp",
                            source=source)
    static = BSPEngine(dgx1(8)).run(skewed_weighted, partition, "sssp",
                                    source=source)
    assert reactive.stall_fraction() < static.stall_fraction()
    assert np.allclose(reactive.values, static.values)


def test_pays_steal_latency(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    cheap = engine(steal_latency_seconds=1e-6).run(
        skewed_weighted, partition, "sssp", source=source
    )
    costly = engine(steal_latency_seconds=5e-3).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert costly.breakdown.overhead > cheap.breakdown.overhead


def test_blind_to_topology(skewed_weighted, source):
    """The reactive policy must not consult costs: its quota matrix is
    identical across machines with different interconnects."""
    from repro.hardware import fully_connected, ring_topology
    from repro.runtime.scheduler import RunContext
    from repro.hardware import TimingModel
    from repro.runtime import Frontier

    partition = random_partition(skewed_weighted, 8, seed=0)
    frontier = Frontier(np.arange(0, 600, 2))
    fragments = [
        Frontier.from_sorted(part)
        for part in partition.split_frontier(frontier.vertices)
    ]
    workloads = np.array(
        [f.work(skewed_weighted) for f in fragments]
    )
    plans = []
    for topology in (dgx1(8), ring_topology(8), fully_connected(8)):
        scheduler = PeekStealScheduler()
        context = RunContext(
            graph=skewed_weighted, partition=partition,
            timing=TimingModel(topology),
            fragment_home=np.arange(8, dtype=np.int64),
            fragment_worker=np.arange(8, dtype=np.int64),
        )
        scheduler.begin_run(context)
        plans.append(
            scheduler.plan(0, fragments, workloads, context)
        )
    signatures = [
        sorted((c.owner, c.worker, c.edges) for c in plan.chunks)
        for plan in plans
    ]
    assert signatures[0] == signatures[1] == signatures[2]
