"""Unit tests for the benchmark harness (workloads, runner, reporting)."""

import numpy as np
import pytest

from repro.bench import (
    Cell,
    algorithm_params,
    cached_partition,
    format_breakdown,
    format_series,
    format_table,
    make_engine,
    pick_source,
    prepare_graph,
    run_cell,
    switch_points,
)
from repro.core import GumConfig
from repro.errors import EngineError


def test_prepare_graph_symmetrizes_for_wcc():
    graph = prepare_graph("LJ", "wcc")
    assert not graph.directed
    assert graph.name == "LJ"


def test_prepare_graph_weights_for_sssp():
    graph = prepare_graph("LJ", "sssp")
    assert graph.is_weighted
    bfs_graph = prepare_graph("LJ", "bfs")
    assert not bfs_graph.is_weighted


def test_prepare_graph_cached():
    assert prepare_graph("TX", "bfs") is prepare_graph("TX", "bfs")


def test_pick_source_not_isolated():
    graph = prepare_graph("LJ", "bfs")
    source = pick_source("LJ")
    assert graph.out_degree(source) > 0
    assert pick_source("LJ") == source


def test_cached_partition_identity():
    graph = prepare_graph("TX", "bfs")
    a = cached_partition(graph, 8, "random")
    b = cached_partition(graph, 8, "random")
    c = cached_partition(graph, 4, "random")
    assert a is b
    assert a is not c


def test_algorithm_params():
    assert "source" in algorithm_params("bfs", "TX")
    assert "source" in algorithm_params("sssp", "TX")
    assert algorithm_params("wcc", "TX") == {}
    assert "max_rounds" in algorithm_params("pr", "TX")
    with pytest.raises(EngineError):
        algorithm_params("apsp", "TX")


@pytest.mark.parametrize(
    "name", ["gum", "gunrock", "groute", "gum-nosteal", "bsp"]
)
def test_make_engine(name):
    engine = make_engine(name, num_gpus=4)
    assert engine.topology.num_gpus == 4


def test_make_engine_unknown():
    with pytest.raises(EngineError, match="unknown engine"):
        make_engine("ligra")


def test_run_cell_smoke(oracle_config):
    cell = Cell("gunrock", "bfs", "TX", num_gpus=4)
    result = run_cell(cell, gum_config=oracle_config)
    assert result.converged
    assert result.num_gpus == 4
    assert "gunrock/bfs/TX@4gpu" in cell.label()


def test_run_cell_engines_agree_on_values(oracle_config):
    gum = run_cell(Cell("gum", "bfs", "TX", 4), gum_config=oracle_config)
    gunrock = run_cell(Cell("gunrock", "bfs", "TX", 4))
    groute = run_cell(Cell("groute", "bfs", "TX", 4))
    assert np.allclose(gum.values, gunrock.values)
    assert np.allclose(gum.values, groute.values)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table():
    text = format_table(
        rows=["gum", "gunrock"],
        columns=["LJ", "OR"],
        cells={("gum", "LJ"): 1.5, ("gunrock", "LJ"): 3.0,
               ("gum", "OR"): 2.0},
        title="Table III",
        best_of_column=True,
    )
    assert "Table III" in text
    assert "1.50*" in text  # gum wins LJ
    assert text.count("-") >= 1  # missing gunrock/OR cell


def test_format_breakdown():
    text = format_breakdown(
        ["run1"],
        [{"compute": 1.0, "communication": 0.5, "serialization": 0.1,
          "sync": 0.2, "overhead": 0.05, "total": 1.85}],
        title="Fig 6",
    )
    assert "Fig 6" in text
    assert "compute" in text
    assert "1.850" in text


def test_format_series_downsamples():
    text = format_series("groups", list(range(100)),
                         [float(x) for x in range(100)], max_points=10)
    assert text.count("->") <= 13
    assert "99" in text  # last point always included
    assert format_series("empty", [], []) == "empty: (empty)"


def test_switch_points():
    assert switch_points([8, 8, 6, 6, 6, 4, 8]) == [
        (0, 8), (2, 6), (5, 4), (6, 8),
    ]
    assert switch_points([]) == []
    assert switch_points([3]) == [(0, 3)]
