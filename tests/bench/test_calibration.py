"""Unit tests for the calibration report."""

import pytest

from repro.bench.calibration import calibration_summary, format_calibration
from repro.hardware import dgx1, single_gpu


def test_summary_consistency(topology8):
    summary = calibration_summary(topology8)
    assert summary["edge_scale"] == 1000.0
    assert summary["local_bandwidth_gbps"] == pytest.approx(900.0)
    assert (
        summary["min_remote_bandwidth_gbps"]
        <= summary["max_remote_bandwidth_gbps"]
    )
    # hostile frontiers cost several times more than easy ones
    assert summary["edge_cost_hard_us"] > 2 * summary["edge_cost_easy_us"]
    # sync with 8 workers costs more than with 1
    assert summary["sync_full_group_us"] > summary["sync_single_us"]
    # the sync-bound regime boundary is positive and finite
    assert 0 < summary["sync_bound_below_edges_per_worker"] < 1e7


def test_single_gpu_summary():
    summary = calibration_summary(single_gpu())
    assert summary["remote_edge_tax_fastest_us"] == 0.0


def test_format_report(topology8):
    text = format_calibration(topology8)
    assert "virtual machine calibration" in text
    assert "sync-bound below" in text
    assert str(1000.0) in text or "1000.000" in text


def test_report_matches_regime_story(topology8):
    # the documented LT story: a near-empty iteration at 8 workers
    # costs ~0.8 ms of sync — i.e. hundreds of microseconds per worker
    summary = calibration_summary(dgx1(8))
    assert 500 < summary["sync_full_group_us"] < 1500
