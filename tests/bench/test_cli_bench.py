"""CLI tests for ``repro bench`` selection and decision-stat surfacing."""

import json

import pytest

from repro.bench import perfharness
from repro.cli import main


def test_bench_list_cases(capsys):
    assert main(["bench", "--list-cases"]) == 0
    names = capsys.readouterr().out.split()
    assert names == sorted(names)
    assert set(names) == set(perfharness.BENCH_CASES)
    # the ISSUE-4 decision-path cases are registered
    assert "decision.iteration.cold.tailTX.8gpu" in names
    assert "decision.iteration.amortized.tailTX.8gpu" in names
    assert "decision.osteal.scan.8gpu" in names
    assert "decision.osteal.bracket.8gpu" in names
    assert "decision.fsteal.cached.64x8" in names


def test_bench_filter_isolates_cases(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main([
        "bench", "--filter", "assembly.dense", "--repeats", "1",
        "--no-compare", "--out", str(out), "--json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert list(report["benchmarks"]) == ["assembly.dense.64x8"]
    assert json.loads(out.read_text()) == report


def test_bench_filter_matches_substring_across_cases(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main([
        "bench", "--filter", "assembly", "--repeats", "1",
        "--no-compare", "--out", str(out), "--json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report["benchmarks"]) == {
        "assembly.dense.64x8", "assembly.sparse.64x8",
    }


def test_bench_filter_unknown_substring_errors(tmp_path, capsys):
    code = main([
        "bench", "--filter", "no-such-case", "--repeats", "1",
        "--no-compare", "--out", str(tmp_path / "bench.json"),
    ])
    assert code == 2
    assert "no benchmark case" in capsys.readouterr().err


def test_run_json_reports_decision_cache(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "2", "--cost-model", "oracle",
        "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    cache = payload["decision_cache"]
    assert cache["amortize"] is True
    for key in ("hits", "misses", "invalidations", "evictions",
                "warm_accepts"):
        assert key in cache


def test_run_no_amortize_flag(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "2", "--cost-model", "oracle",
        "--no-amortize", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["decision_cache"]["amortize"] is False


def test_profile_prints_decision_cache_line(tmp_path, capsys):
    code = main([
        "profile", "--graph", "TX", "--algorithm", "sssp",
        "--engine", "gum", "--gpus", "2", "--cost-model", "oracle",
        "--out", str(tmp_path / "p.trace.json"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "decision cache" in out
    assert "warm accepts" in out


def test_recorded_run_diff_shows_decision_metrics(tmp_path, capsys):
    root = tmp_path / "registry"
    for __ in range(2):
        assert main([
            "run", "--graph", "TX", "--algorithm", "bfs",
            "--engine", "gum", "--gpus", "2", "--cost-model", "oracle",
            "--record", "--runs-dir", str(root),
        ]) == 0
    capsys.readouterr()
    ids = sorted(
        p.name for p in root.iterdir()
        if (p / "manifest.json").is_file()
    )
    assert main(["runs", "diff", ids[0], ids[1],
                 "--runs-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "decision_cache.hits" in out
    assert "OK" in out
