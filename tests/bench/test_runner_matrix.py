"""Unit tests for the experiment matrix runner."""

import numpy as np

from repro.bench import Cell, run_matrix
from repro.core import GumConfig


def test_run_matrix_covers_cross_product():
    results = run_matrix(
        engines=("gunrock", "gum"),
        algorithms=("bfs",),
        graphs=("TX", "CA"),
        num_gpus=4,
        gum_config=GumConfig(cost_model="oracle"),
    )
    assert len(results) == 4
    assert Cell("gum", "bfs", "TX", 4) in results
    assert Cell("gunrock", "bfs", "CA", 4) in results
    for cell, result in results.items():
        assert result.engine == cell.engine
        assert result.num_gpus == 4
        assert result.converged


def test_run_matrix_results_agree_per_graph():
    results = run_matrix(
        engines=("gunrock", "gum"),
        algorithms=("bfs",),
        graphs=("TX",),
        num_gpus=4,
        gum_config=GumConfig(cost_model="oracle"),
    )
    gum = results[Cell("gum", "bfs", "TX", 4)]
    gunrock = results[Cell("gunrock", "bfs", "TX", 4)]
    assert np.allclose(gum.values, gunrock.values)


def test_cell_label():
    cell = Cell("gum", "sssp", "EU", 2, "metis")
    assert cell.label() == "gum/sssp/EU@2gpu/metis"
