"""The scale.* family: registry shape, gate logic, report round-trip.

These tests never touch rmat20 — the real cases run via
``python -m repro scale`` (CI's ``scale-smoke`` job). What must not
drift silently is the *gate*: which invariants fail a case, and how a
fresh report is compared against the committed baseline.
"""

import json

import pytest

from repro.bench import scale
from repro.errors import ReproError


def _entry(**overrides):
    """A passing 2x4 report entry; override fields to break it."""
    entry = {
        "algorithm": "bfs",
        "nodes": 2,
        "gpus_per_node": 4,
        "num_gpus": 8,
        "graph": "rmat20x8",
        "num_edges": 8_000_000,
        "num_iterations": 6,
        "csr_bytes": 80_000_000,
        "resident_budget_bytes": 10_000_000,
        "capacity_ratio": 8.0,
        "shards": 16,
        "peak_resident_bytes": 9_000_000,
        "shard_loads": 100,
        "shard_evictions": 80,
        "virtual_total_ms": 8000.0,
        "virtual_ms_per_edge": 1e-3,
        "wall_seconds_in_core": 3.0,
        "wall_seconds_sharded": 3.3,
        "wall_overhead": 0.1,
        "bit_identical": True,
        "inter_node_stolen_edges": 5000,
    }
    entry.update(overrides)
    return entry


def _report(**overrides):
    return {
        "schema": scale.SCALE_SCHEMA,
        "cases": {"scale.bfs.2x4": _entry(**overrides)},
    }


class TestRegistry:
    def test_all_shapes_and_algorithms_registered(self):
        expected = {
            f"scale.{algo}.{nodes}x4"
            for algo in ("bfs", "pr") for nodes in (1, 2, 4)
        }
        assert set(scale.SCALE_CASES) == expected

    def test_names_match_case_fields(self):
        for name, case in scale.SCALE_CASES.items():
            assert name == (
                f"scale.{case.algorithm}.{case.num_nodes}"
                f"x{case.gpus_per_node}"
            )
            assert case.num_gpus == case.num_nodes * case.gpus_per_node

    def test_pr_cases_cap_rounds(self):
        for case in scale.SCALE_CASES.values():
            if case.algorithm == "pr":
                assert case.max_rounds == 5

    def test_unknown_filter_rejected(self):
        with pytest.raises(ReproError, match="no scale case matches"):
            scale.run_scale_suite(names=["scale.dijkstra"])


class TestGate:
    def test_passing_entry_has_no_violations(self):
        assert scale.compare_scale_reports(_report(), _report()) == []

    def test_bit_identity_violation(self):
        problems = scale.compare_scale_reports(
            _report(bit_identical=False), _report()
        )
        assert any("bit-identical" in p for p in problems)

    def test_budget_violation(self):
        problems = scale.compare_scale_reports(
            _report(peak_resident_bytes=11_000_000), _report()
        )
        assert any("exceed" in p for p in problems)

    def test_capacity_ratio_violation(self):
        problems = scale.compare_scale_reports(
            _report(capacity_ratio=4.0), _report()
        )
        assert any("resident budget" in p for p in problems)

    def test_wall_overhead_violation(self):
        problems = scale.compare_scale_reports(
            _report(wall_overhead=0.30), _report()
        )
        assert any("wall-clock" in p for p in problems)

    def test_multi_node_requires_inter_node_steals(self):
        problems = scale.compare_scale_reports(
            _report(inter_node_stolen_edges=0), _report()
        )
        assert any("two-level stealing" in p for p in problems)

    def test_single_node_needs_no_inter_node_steals(self):
        current = {
            "schema": scale.SCALE_SCHEMA,
            "cases": {
                "scale.bfs.1x4": _entry(
                    nodes=1, num_gpus=4, inter_node_stolen_edges=0
                )
            },
        }
        assert scale.compare_scale_reports(current, current) == []

    def test_virtual_drift_fails_against_baseline(self):
        problems = scale.compare_scale_reports(
            _report(virtual_ms_per_edge=1.001e-3), _report()
        )
        assert any("baseline" in p for p in problems)

    def test_virtual_noise_band_tolerated(self):
        wiggle = 1e-3 * (1 + scale.VIRTUAL_TOLERANCE / 2)
        assert scale.compare_scale_reports(
            _report(virtual_ms_per_edge=wiggle), _report()
        ) == []

    def test_case_missing_from_baseline_is_not_gated(self):
        baseline = {"schema": scale.SCALE_SCHEMA, "cases": {}}
        assert scale.compare_scale_reports(_report(), baseline) == []

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ReproError, match="schema"):
            scale.compare_scale_reports(
                {"schema": "bogus/9", "cases": {}}, _report()
            )


class TestReportIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        scale.write_scale_report(_report(), path)
        assert scale.load_scale_report(path) == _report()
        # stable bytes: indented, sorted, newline-terminated
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            _report(), indent=2, sort_keys=True
        ) + "\n"

    def test_format_mentions_every_case(self):
        table = scale.format_scale_report(_report())
        assert "scale.bfs.2x4" in table
        assert "inter-steal" in table

    def test_committed_baseline_is_valid(self):
        baseline = scale.load_scale_report(
            "benchmarks/scale/baseline.json"
        )
        assert baseline["schema"] == scale.SCALE_SCHEMA
        assert set(baseline["cases"]) == set(scale.SCALE_CASES)
        # the committed baseline must itself satisfy the invariants
        assert scale.compare_scale_reports(baseline, baseline) == []
