"""Shared fixtures for the chaos test suite."""

from pathlib import Path

import pytest

SCENARIO_DIR = (Path(__file__).resolve().parents[2]
                / "benchmarks" / "scenarios")


@pytest.fixture(scope="session")
def scenario_dir():
    return SCENARIO_DIR


@pytest.fixture(scope="session")
def repo_scenarios():
    """The scenario files committed under benchmarks/scenarios/."""
    return sorted(SCENARIO_DIR.glob("*.json"))
