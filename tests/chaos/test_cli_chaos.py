"""CLI-level chaos tests: the --chaos flag and exit-code contract."""

import json

import pytest

from repro.cli import main


def test_cli_chaos_run_reports_the_eviction(scenario_dir, capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs", "--gpus", "4",
        "--chaos", str(scenario_dir / "kill-worker.json"), "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    chaos = payload["chaos"]
    assert chaos["enabled"] is True
    assert chaos["scenario"] == "kill-worker"
    assert chaos["workers_killed"] == [2]
    assert chaos["evictions"] >= 1
    assert chaos["faults_injected"] >= 1
    assert any(e["kind"] == "kill_worker" for e in chaos["events"])


def test_cli_without_chaos_has_no_chaos_block(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs", "--gpus", "4",
        "--cost-model", "oracle", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert "chaos" not in payload


def _assert_one_line_error(code, capsys, needle):
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1
    assert needle in err


def test_cli_missing_scenario_file_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs", "--gpus", "4",
        "--chaos", str(missing),
    ])
    _assert_one_line_error(code, capsys, "nope.json")


def test_cli_malformed_scenario_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "schema": "repro-chaos/1",
        "faults": [{"kind": "meteor_strike", "at_iteration": 0}],
    }))
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs", "--gpus", "4",
        "--chaos", str(bad),
    ])
    _assert_one_line_error(code, capsys, "unknown fault kind")


def test_cli_out_of_range_worker_exits_2(tmp_path, capsys):
    # parses fine, but references a GPU this machine lacks: rejected
    # at begin_run, still one line and exit 2
    oversized = tmp_path / "oversized.json"
    oversized.write_text(json.dumps({
        "schema": "repro-chaos/1",
        "faults": [{"kind": "kill_worker", "at_iteration": 0,
                    "worker": 7}],
    }))
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs", "--gpus", "4",
        "--chaos", str(oversized),
    ])
    _assert_one_line_error(code, capsys, "out of range")


def test_cli_compare_skips_groute_under_chaos(scenario_dir, capsys):
    code = main([
        "compare", "--graph", "TX", "--algorithm", "bfs", "--gpus", "4",
        "--cost-model", "oracle",
        "--chaos", str(scenario_dir / "slow-worker.json"),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "groute" not in captured.out
    assert "groute" in captured.err  # the skip is announced, not silent
    assert "gum" in captured.out and "gunrock" in captured.out
