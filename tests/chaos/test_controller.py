"""Unit tests for the deterministic fault-injection controller."""

import numpy as np
import pytest

from repro.chaos import ChaosController, ChaosScenario, FaultSpec
from repro.chaos.controller import RETRY_BACKOFF_SECONDS
from repro.errors import FaultInjectionError
from repro.hardware import dgx1


def bound(*faults, seed=0, gpus=4):
    controller = ChaosController(ChaosScenario(faults=faults, seed=seed))
    controller.begin_run(dgx1(gpus))
    return controller


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_unbound_controller_refuses_queries():
    controller = ChaosController()
    with pytest.raises(FaultInjectionError, match="begin_run"):
        controller.topology
    with pytest.raises(FaultInjectionError, match="begin_run"):
        controller.alive_workers()


def test_begin_run_validates_against_the_machine():
    controller = ChaosController(ChaosScenario(
        faults=(FaultSpec("kill_worker", 0, {"worker": 6}),)
    ))
    with pytest.raises(FaultInjectionError, match="out of range"):
        controller.begin_run(dgx1(4))
    controller.begin_run(dgx1(8))  # same controller, bigger machine


def test_begin_run_resets_state():
    controller = bound(FaultSpec("kill_worker", 0, {"worker": 1}))
    controller.advance(0)
    assert controller.dead_workers == {1}
    controller.begin_run(dgx1(4))
    assert controller.dead_workers == set()
    assert controller.stats()["faults_injected"] == 0
    assert controller.stats()["events"] == []
    # the schedule replays identically on the second run
    controller.advance(0)
    assert controller.dead_workers == {1}


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------
def test_advance_fires_at_or_before_iteration():
    controller = bound(FaultSpec("kill_worker", 3, {"worker": 2}))
    assert controller.advance(1) == []
    assert controller.is_alive(2)
    # the engine may converge past the scheduled tick; a late advance
    # still fires the fault exactly once
    events = controller.advance(5)
    assert [e.kind for e in events] == ["kill_worker"]
    assert events[0].iteration == 5
    assert controller.advance(6) == []
    assert controller.dead_workers == {2}
    assert controller.stats()["faults_injected"] == 1


def test_kill_event_names_the_heir():
    controller = bound(FaultSpec("kill_worker", 0, {"worker": 2}))
    (event,) = controller.advance(0)
    heir = event.detail["heir"]
    survivors = controller.alive_workers()
    assert survivors == [0, 1, 3]
    eff = controller.topology.effective_bandwidth_matrix()
    expected = max(survivors, key=lambda w: (eff[2, w], -w))
    assert heir == expected
    assert controller.heir_of(2) == expected
    assert controller.stats()["workers_killed"] == [2]


def test_degrade_link_recomputes_the_machine():
    controller = bound(
        FaultSpec("degrade_link", 2, {"a": 0, "b": 1, "lanes": 0})
    )
    base = controller.topology
    assert not controller.topology_changed
    (event,) = controller.advance(2)
    assert controller.topology_changed
    assert controller.topology.lane_matrix[0, 1] == 0
    assert event.detail["effective_gbps"] == pytest.approx(
        controller.topology.effective_bandwidth(0, 1)
    )
    # the bound topology object is never mutated in place
    assert base.lane_matrix[0, 1] > 0
    assert controller.stats()["links_degraded"] == 1


# ----------------------------------------------------------------------
# Windowed faults
# ----------------------------------------------------------------------
def test_compute_scale_window():
    controller = bound(FaultSpec(
        "slow_worker", 2, {"worker": 1, "factor": 2.0, "duration": 3}
    ))
    assert controller.compute_scale(1) is None
    for it in (2, 3, 4):
        scale = controller.compute_scale(it)
        assert np.array_equal(scale, [1.0, 2.0, 1.0, 1.0])
    assert controller.compute_scale(5) is None


def test_overlapping_slowdowns_multiply():
    controller = bound(
        FaultSpec("slow_worker", 0, {"worker": 1, "factor": 2.0}),
        FaultSpec("slow_worker", 0, {"worker": 1, "factor": 3.0,
                                     "duration": 1}),
    )
    assert np.array_equal(controller.compute_scale(0),
                          [1.0, 6.0, 1.0, 1.0])
    # the open-ended fault outlives the windowed one
    assert np.array_equal(controller.compute_scale(1),
                          [1.0, 2.0, 1.0, 1.0])


def test_flaky_window_and_determinism():
    spec = FaultSpec("flaky_transfers", 1,
                     {"duration": 4, "rate": 0.7, "max_retries": 5})
    first = bound(spec, seed=11)
    second = bound(spec, seed=11)
    assert not first.flaky_active(0)
    assert first.flaky_active(1) and first.flaky_active(4)
    assert not first.flaky_active(5)
    draws = [
        first.failed_transfer_attempts(it, owner, worker)
        for it in range(1, 5)
        for owner in range(4)
        for worker in range(4)
    ]
    replay = [
        second.failed_transfer_attempts(it, owner, worker)
        for it in range(1, 5)
        for owner in range(4)
        for worker in range(4)
    ]
    assert draws == replay
    assert all(0 <= d <= 5 for d in draws)
    assert any(d > 0 for d in draws)  # rate 0.7 over 64 draws
    assert first.stats()["transfer_retries"] == sum(draws)


def test_flaky_draws_depend_on_the_seed():
    spec = FaultSpec("flaky_transfers", 0,
                     {"rate": 0.7, "max_retries": 5})
    a = bound(spec, seed=1)
    b = bound(spec, seed=2)
    draws_a = [a.failed_transfer_attempts(0, o, w)
               for o in range(4) for w in range(4)]
    draws_b = [b.failed_transfer_attempts(0, o, w)
               for o in range(4) for w in range(4)]
    assert draws_a != draws_b


def test_flaky_outside_window_is_free():
    controller = bound(FaultSpec("flaky_transfers", 5, {"rate": 0.9}))
    assert controller.failed_transfer_attempts(0, 0, 1) == 0
    assert controller.stats()["transfer_retries"] == 0


def test_flaky_batch_matches_scalar_bitwise():
    """The vectorized draw is the scalar draw: fails, costs, counters."""
    specs = (
        FaultSpec("flaky_transfers", 0,
                  {"duration": 10, "rate": 0.6, "max_retries": 4}),
        FaultSpec("flaky_transfers", 0,
                  {"duration": 10, "rate": 0.9, "max_retries": 2}),
    )
    rng = np.random.default_rng(3)
    owners = rng.integers(0, 4, size=200)
    workers = rng.integers(0, 4, size=200)
    seconds = rng.random(200) * 1e-3

    scalar = bound(*specs, seed=7)
    scalar_fails = np.array([
        scalar.failed_transfer_attempts(2, int(o), int(w))
        for o, w in zip(owners, workers)
    ])
    scalar_cost = np.array([
        scalar.retry_seconds(float(t), int(f))
        for t, f in zip(seconds, scalar_fails)
    ])

    batch = bound(*specs, seed=7)
    batch_fails = batch.failed_transfer_attempts_batch(2, owners, workers)
    batch_cost = batch.retry_seconds_batch(seconds, batch_fails)

    assert np.array_equal(scalar_fails, batch_fails)
    assert np.array_equal(scalar_cost, batch_cost)  # bitwise
    assert scalar.stats() == batch.stats()
    assert batch.stats()["transfer_retries"] > 0


def test_flaky_batch_empty_and_outside_window():
    controller = bound(
        FaultSpec("flaky_transfers", 5, {"rate": 0.9, "max_retries": 3})
    )
    empty = controller.failed_transfer_attempts_batch(
        0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    )
    assert empty.size == 0
    outside = controller.failed_transfer_attempts_batch(
        0, np.array([0, 1]), np.array([1, 2])
    )
    assert np.array_equal(outside, [0, 0])
    assert controller.stats()["transfer_retries"] == 0


def test_retry_seconds_formula():
    assert ChaosController.retry_seconds(1e-3, 0) == 0.0
    # two failed attempts: two retransmits plus 1x + 2x backoff units
    expected = 2 * 1e-3 + RETRY_BACKOFF_SECONDS * 3.0
    assert ChaosController.retry_seconds(1e-3, 2) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Solver timeouts
# ----------------------------------------------------------------------
def test_targeted_timeout_tokens():
    controller = bound(FaultSpec(
        "solver_timeout", 0, {"count": 2, "solver": "highs"}
    ))
    controller.advance(0)
    assert not controller.solver_times_out("lp")  # wrong backend
    assert controller.solver_times_out("highs")
    assert controller.solver_times_out("highs")
    assert not controller.solver_times_out("highs")  # tokens drained
    assert controller.stats()["solver_timeouts"] == 2
    assert controller.drain_timeout_charges() == 2
    assert controller.drain_timeout_charges() == 0


def test_wildcard_timeout_token_matches_any_backend():
    controller = bound(FaultSpec("solver_timeout", 0, {}))
    controller.advance(0)
    assert controller.solver_times_out("anything")
    assert not controller.solver_times_out("anything")


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_stats_shape():
    controller = bound(FaultSpec("kill_worker", 0, {"worker": 3}),
                       seed=5)
    controller.advance(0)
    controller.note_evictions(2)
    stats = controller.stats()
    assert stats["enabled"] is True
    assert stats["scenario"] == "scenario"
    assert stats["seed"] == 5
    assert stats["evictions"] == 2
    assert len(stats["events"]) == 1
    event = stats["events"][0]
    assert event["kind"] == "kill_worker"
    assert event["worker"] == 3
    assert "heir" in event
    for key in ("faults_injected", "links_degraded", "slowdowns",
                "solver_timeouts", "solver_fallbacks",
                "transfer_retries", "transfer_giveups"):
        assert isinstance(stats[key], int)
