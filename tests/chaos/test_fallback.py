"""Unit tests for the solver fallback chain."""

import numpy as np
import pytest

from repro.chaos import ChaosController, ChaosScenario, FallbackSolver, FaultSpec
from repro.core import FStealProblem, make_solver
from repro.errors import ReproError, SolverError
from repro.hardware import dgx1


def problem(n=4, seed=0):
    rng = np.random.default_rng(seed)
    costs = 1e-9 * (0.5 + rng.random((n, n)) * 2)
    loads = rng.integers(0, 50_000, n)
    return FStealProblem(costs, loads)


def controller_with_tokens(count, solver=None):
    controller = ChaosController(ChaosScenario(faults=(
        FaultSpec("solver_timeout", 0,
                  {"count": count, "solver": solver}),
    )))
    controller.begin_run(dgx1(4))
    controller.advance(0)
    return controller


class ExplodingSolver:
    """A backend whose every solve raises SolverError."""

    name = "exploding"

    def solve(self, problem, warm_start=None):
        raise SolverError("synthetic backend failure")


# ----------------------------------------------------------------------
# Chain construction
# ----------------------------------------------------------------------
def test_chain_skips_the_duplicate_backend():
    fallback = FallbackSolver(make_solver("lp"))
    assert [s.name for s in fallback.chain] == ["lp", "greedy"]
    assert fallback.name == "lp"  # reports as the primary


def test_chain_appends_both_fallbacks_for_other_primaries():
    fallback = FallbackSolver(make_solver("bnb"))
    assert [s.name for s in fallback.chain] == ["bnb", "lp", "greedy"]


# ----------------------------------------------------------------------
# Solve behavior
# ----------------------------------------------------------------------
def test_without_faults_primary_answers():
    prob = problem()
    direct = make_solver("greedy").solve(prob)
    wrapped = FallbackSolver(make_solver("greedy")).solve(prob)
    assert wrapped.solver == direct.solver
    assert wrapped.objective == direct.objective
    assert np.array_equal(wrapped.assignment, direct.assignment)


def test_injected_timeout_falls_through_to_the_next_backend():
    controller = controller_with_tokens(1, solver="lp")
    fallback = FallbackSolver(make_solver("lp"), controller)
    solution = fallback.solve(problem())
    assert solution.solver == "greedy"
    prob = problem()
    prob.validate_assignment(fallback.solve(prob).assignment)
    stats = controller.stats()
    assert stats["solver_timeouts"] == 1
    assert stats["solver_fallbacks"] >= 1


def test_genuine_solver_error_also_degrades():
    controller = ChaosController()
    controller.begin_run(dgx1(4))
    fallback = FallbackSolver(ExplodingSolver(), controller)
    assert [s.name for s in fallback.chain] == ["exploding", "lp",
                                                "greedy"]
    solution = fallback.solve(problem())
    assert solution.solver in ("lp", "greedy")
    assert controller.stats()["solver_fallbacks"] == 1
    assert controller.stats()["solver_timeouts"] == 0


def test_exhausted_chain_raises_solver_error():
    # a wildcard token bucket deep enough to kill every backend
    controller = controller_with_tokens(5, solver=None)
    fallback = FallbackSolver(make_solver("lp"), controller)
    with pytest.raises(SolverError, match="all solver backends failed"):
        fallback.solve(problem())
    # still catchable at the API boundary
    controller = controller_with_tokens(5, solver=None)
    with pytest.raises(ReproError):
        FallbackSolver(make_solver("lp"), controller).solve(problem())


def test_error_message_names_every_failed_backend():
    controller = controller_with_tokens(5, solver=None)
    fallback = FallbackSolver(make_solver("lp"), controller)
    with pytest.raises(SolverError, match="lp.*greedy"):
        fallback.solve(problem())
