"""End-to-end fault injection through the GUM runtime.

The contract under test: faults cost virtual time, never answers —
and with no faults scheduled, attaching the chaos layer leaves the
run bit-identical.
"""

import numpy as np
import pytest

import repro
from repro.algorithms.validate import reference_bfs
from repro.chaos import ChaosController, ChaosScenario, FaultSpec
from repro.core import GumConfig
from repro.errors import EngineError


def controller(*faults, seed=0):
    return ChaosController(ChaosScenario(faults=faults, seed=seed))


def run_bfs(graph, source, config, chaos=None):
    return repro.run(graph, "bfs", num_gpus=4, source=source,
                     gum_config=config, chaos=chaos)


@pytest.fixture(scope="module")
def oracle_config():
    # module-scoped twin of the top-level fixture, so the healthy
    # baseline below is computed once per module
    return GumConfig(cost_model="oracle")


@pytest.fixture(scope="module")
def healthy(skewed_graph, source, oracle_config):
    return run_bfs(skewed_graph, source, oracle_config)


@pytest.fixture(scope="module")
def oracle(skewed_graph, source):
    return reference_bfs(skewed_graph, source)


def test_no_fault_run_is_bit_identical(skewed_graph, source,
                                       oracle_config, healthy):
    chaotic = run_bfs(skewed_graph, source, oracle_config,
                      chaos=controller())
    # exact equality, not approx: the chaos layer must not perturb
    # a single floating-point operation on the fault-free path
    assert chaotic.total_seconds == healthy.total_seconds
    assert chaotic.num_iterations == healthy.num_iterations
    assert np.array_equal(chaotic.values, healthy.values)
    assert healthy.chaos is None
    assert chaotic.chaos["enabled"] is True
    assert chaotic.chaos["faults_injected"] == 0


def test_kill_worker_evicts_and_stays_correct(skewed_graph, source,
                                              oracle_config, oracle):
    chaos = controller(FaultSpec("kill_worker", 1, {"worker": 2}))
    first = run_bfs(skewed_graph, source, oracle_config, chaos=chaos)
    replay = run_bfs(skewed_graph, source, oracle_config, chaos=chaos)
    assert first.total_seconds == replay.total_seconds
    assert np.array_equal(first.values, oracle)
    stats = first.chaos
    assert stats["workers_killed"] == [2]
    assert stats["faults_injected"] == 1
    assert stats["evictions"] >= 1
    (event,) = stats["events"]
    assert event["kind"] == "kill_worker"
    assert event["heir"] != 2


def test_slow_worker_costs_time_not_answers(skewed_graph, source,
                                            oracle_config, healthy):
    chaos = controller(FaultSpec(
        "slow_worker", 0, {"worker": 0, "factor": 8.0}
    ))
    slowed = run_bfs(skewed_graph, source, oracle_config, chaos=chaos)
    assert slowed.total_seconds > healthy.total_seconds
    assert np.array_equal(slowed.values, healthy.values)
    assert slowed.chaos["slowdowns"] == 1


def test_degrade_link_reroutes_not_corrupts(skewed_graph, source,
                                            oracle_config, healthy):
    chaos = controller(FaultSpec(
        "degrade_link", 0, {"a": 0, "b": 1, "lanes": 0}
    ))
    degraded = run_bfs(skewed_graph, source, oracle_config, chaos=chaos)
    assert np.array_equal(degraded.values, healthy.values)
    stats = degraded.chaos
    assert stats["links_degraded"] == 1
    (event,) = stats["events"]
    assert event["effective_gbps"] > 0


def test_flaky_transfers_charge_retry_time(skewed_graph, source,
                                           oracle_config, healthy):
    chaos = controller(
        FaultSpec("flaky_transfers", 0,
                  {"rate": 0.6, "max_retries": 3}),
        seed=7,
    )
    flaky = run_bfs(skewed_graph, source, oracle_config, chaos=chaos)
    assert np.array_equal(flaky.values, healthy.values)
    assert flaky.chaos["transfer_retries"] > 0
    assert flaky.total_seconds > healthy.total_seconds


def test_solver_timeout_degrades_gracefully(skewed_graph, source,
                                            oracle_config, healthy):
    chaos = controller(FaultSpec("solver_timeout", 0, {"count": 1}))
    degraded = run_bfs(skewed_graph, source, oracle_config, chaos=chaos)
    assert np.array_equal(degraded.values, healthy.values)
    stats = degraded.chaos
    assert stats["solver_timeouts"] == 1
    assert stats["solver_fallbacks"] == 1
    # the abandoned solve's budget lands in modeled decision time
    assert degraded.total_seconds > healthy.total_seconds


def test_chaos_requires_a_bsp_style_engine(skewed_graph, source):
    with pytest.raises(EngineError, match="BSP-style"):
        repro.run(skewed_graph, "bfs", engine="groute", num_gpus=4,
                  source=source, chaos=controller())


def test_chaos_works_on_the_static_baselines(skewed_graph, source):
    chaos = controller(FaultSpec(
        "slow_worker", 0, {"worker": 1, "factor": 4.0}
    ))
    baseline = repro.run(skewed_graph, "bfs", engine="gunrock",
                         num_gpus=4, source=source)
    slowed = repro.run(skewed_graph, "bfs", engine="gunrock",
                       num_gpus=4, source=source, chaos=chaos)
    assert np.array_equal(slowed.values, baseline.values)
    assert slowed.total_seconds > baseline.total_seconds
