"""Unit tests for the chaos scenario schema."""

import json

import pytest

from repro.chaos import (
    ChaosScenario,
    FAULT_KINDS,
    FaultSpec,
    SCHEMA_VERSION,
)
from repro.errors import FaultInjectionError, ReproError


# ----------------------------------------------------------------------
# FaultSpec validation
# ----------------------------------------------------------------------
def test_defaults_are_filled():
    spec = FaultSpec("flaky_transfers", 0, {})
    assert spec.params == {"duration": None, "rate": 0.5,
                           "max_retries": 3}
    assert spec.duration is None


def test_unknown_kind_rejected():
    with pytest.raises(FaultInjectionError, match="unknown fault kind"):
        FaultSpec("meteor_strike", 0, {})


def test_missing_required_field_rejected():
    with pytest.raises(FaultInjectionError, match="missing required"):
        FaultSpec("kill_worker", 0, {})
    with pytest.raises(FaultInjectionError, match="missing required"):
        FaultSpec("slow_worker", 0, {"worker": 1})


def test_unknown_field_rejected():
    with pytest.raises(FaultInjectionError, match="unknown field"):
        FaultSpec("kill_worker", 0, {"worker": 1, "blast_radius": 3})


def test_negative_iteration_rejected():
    with pytest.raises(FaultInjectionError, match="at_iteration"):
        FaultSpec("kill_worker", -1, {"worker": 0})


@pytest.mark.parametrize("kind,params", [
    ("slow_worker", {"worker": 0, "factor": 0.0}),
    ("slow_worker", {"worker": 0, "factor": -2}),
    ("degrade_link", {"a": 1, "b": 1}),
    ("degrade_link", {"a": 0, "b": 1, "lanes": -1}),
    ("flaky_transfers", {"rate": 1.0}),
    ("flaky_transfers", {"max_retries": 0}),
    ("solver_timeout", {"count": 0}),
    ("solver_timeout", {"solver": 7}),
    ("kill_worker", {"worker": 0, "duration": 0}),
])
def test_bad_values_rejected(kind, params):
    if "duration" in params and kind == "kill_worker":
        # kill has no duration field at all
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind, 0, params)
        return
    with pytest.raises(FaultInjectionError):
        FaultSpec(kind, 0, params)


def test_every_kind_constructs_with_minimal_fields():
    minimal = {
        "kill_worker": {"worker": 0},
        "slow_worker": {"worker": 0, "factor": 2.0},
        "degrade_link": {"a": 0, "b": 1},
        "flaky_transfers": {},
        "solver_timeout": {},
    }
    assert set(minimal) == set(FAULT_KINDS)
    for kind, params in minimal.items():
        spec = FaultSpec(kind, 0, params)
        assert spec.kind == kind


# ----------------------------------------------------------------------
# Scenario round-trip and machine validation
# ----------------------------------------------------------------------
def test_round_trip_through_dict():
    scenario = ChaosScenario(
        faults=(
            FaultSpec("kill_worker", 3, {"worker": 2}),
            FaultSpec("degrade_link", 1, {"a": 0, "b": 3, "lanes": 1}),
        ),
        name="drill", description="two faults", seed=42,
    )
    payload = scenario.as_dict()
    assert payload["schema"] == SCHEMA_VERSION
    again = ChaosScenario.from_dict(json.loads(json.dumps(payload)))
    assert again == scenario


def test_from_dict_rejects_wrong_schema():
    with pytest.raises(FaultInjectionError, match="schema"):
        ChaosScenario.from_dict({"schema": "repro-chaos/99"})


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(FaultInjectionError, match="unknown field"):
        ChaosScenario.from_dict({"schema": SCHEMA_VERSION,
                                 "blast": True})


def test_validate_for_range():
    scenario = ChaosScenario(
        faults=(FaultSpec("kill_worker", 0, {"worker": 6}),)
    )
    scenario.validate_for(8)
    with pytest.raises(FaultInjectionError, match="out of range"):
        scenario.validate_for(4)


def test_validate_for_rejects_total_extinction():
    scenario = ChaosScenario(faults=tuple(
        FaultSpec("kill_worker", i, {"worker": i}) for i in range(2)
    ))
    with pytest.raises(FaultInjectionError, match="at least one"):
        scenario.validate_for(2)
    scenario.validate_for(4)  # two of four may die


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------
def test_from_file_round_trip(tmp_path):
    path = tmp_path / "drill.json"
    scenario = ChaosScenario(
        faults=(FaultSpec("slow_worker", 1,
                          {"worker": 0, "factor": 3.0, "duration": 5}),),
        seed=9,
    )
    path.write_text(json.dumps(scenario.as_dict()))
    loaded = ChaosScenario.from_file(path)
    # a default name is replaced by the file stem
    assert loaded.name == "drill"
    assert loaded.faults == scenario.faults
    assert loaded.seed == 9


def test_from_file_errors_name_the_file(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(FaultInjectionError, match="nope.json"):
        ChaosScenario.from_file(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(FaultInjectionError, match="bad.json"):
        ChaosScenario.from_file(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(ReproError, match="wrong.json"):
        ChaosScenario.from_file(wrong)


def test_committed_scenarios_parse(repo_scenarios):
    assert len(repo_scenarios) >= 3
    for path in repo_scenarios:
        scenario = ChaosScenario.from_file(path)
        scenario.validate_for(4)
        assert scenario.name == path.stem
        assert scenario.description
