"""Shared fixtures for the test suite.

Everything here is small and deterministic: tests must run in seconds
and never depend on benchmark-scale inputs.
"""

import numpy as np
import pytest

from repro.core import GumConfig
from repro.graph import (
    from_edges,
    rmat,
    road_network,
    symmetrize,
    with_random_weights,
)
from repro.hardware import dgx1
from repro.partition import random_partition


@pytest.fixture(scope="session")
def tiny_graph():
    """The hand-checkable 6-vertex graph used across unit tests.

    Edges: 0->1, 0->2, 1->3, 2->3, 3->4, 4->5, 5->0 (a cycle with
    chords); every vertex reachable from 0.
    """
    return from_edges(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 0)],
        num_vertices=6,
        name="tiny",
    )


@pytest.fixture(scope="session")
def skewed_graph():
    """A small scale-free graph (R-MAT) for stealing-relevant tests."""
    return rmat(10, 10, seed=5, name="skewed")


@pytest.fixture(scope="session")
def skewed_weighted(skewed_graph):
    """Weighted variant of :func:`skewed_graph` for SSSP."""
    return with_random_weights(skewed_graph, seed=6)


@pytest.fixture(scope="session")
def skewed_symmetric(skewed_graph):
    """Symmetrized variant of :func:`skewed_graph` for WCC."""
    return symmetrize(skewed_graph)


@pytest.fixture(scope="session")
def road_graph():
    """A long thin lattice exhibiting the long-tail regime."""
    return road_network(6, 80, seed=3, name="miniroad")


@pytest.fixture(scope="session")
def topology8():
    """The 8-GPU DGX-1 hybrid cube mesh."""
    return dgx1(8)


@pytest.fixture(scope="session")
def skewed_partition(skewed_graph):
    """8-way random partition of the skewed graph."""
    return random_partition(skewed_graph, 8, seed=0)


@pytest.fixture(scope="session")
def source(skewed_graph):
    """A guaranteed non-isolated traversal source."""
    return int(np.argmax(skewed_graph.out_degrees()))


@pytest.fixture()
def oracle_config():
    """GUM config with the oracle cost model (no training in tests)."""
    return GumConfig(cost_model="oracle")
