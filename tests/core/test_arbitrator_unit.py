"""Focused unit tests for arbitrator internals (gate, backoff, makespan)."""

import numpy as np
import pytest

from repro.core import GumConfig, GumEngine, GumScheduler
from repro.core.arbitrator import GumScheduler as _Sched
from repro.graph import erdos_renyi, from_edge_arrays, with_random_weights
from repro.hardware import dgx1
from repro.partition import random_partition, segmented_partition


def test_static_makespan():
    costs = np.array([[1.0, 2.0], [3.0, 4.0]])
    workloads = np.array([10, 10])
    worker_of = np.array([0, 1])
    # worker 0 gets fragment 0 (10 * 1), worker 1 gets fragment 1 (10 * 4)
    assert _Sched._static_makespan(costs, workloads, worker_of) == 40.0
    # both fragments on worker 0: 10*1 + 10*3
    assert _Sched._static_makespan(
        costs, workloads, np.array([0, 0])
    ) == 40.0
    assert _Sched._static_makespan(
        costs, np.array([0, 0]), worker_of
    ) == 0.0


def test_gate_suppresses_unprofitable_steals(skewed_weighted, source):
    """On a near-balanced random partition the gate should suppress
    most steals that the raw t1/t2 thresholds would admit."""
    partition = random_partition(skewed_weighted, 8, seed=0)
    eager = GumConfig(
        fsteal=True, osteal=False, cost_model="oracle",
        t1_min_edges=0, t2_imbalance_edges=0, t2_imbalance_ratio=0.0,
    )
    run = GumEngine(dgx1(8), eager).run(
        skewed_weighted, partition, "sssp", source=source
    )
    committed = sum(r.fsteal_applied for r in run.iterations)
    # the busiest iterations steal; the tiny ones are gated out
    assert committed < run.num_iterations


def test_gate_never_blocks_profitable_steals(skewed_weighted, source):
    """On a concentrated (segmented) partition the big iterations must
    still steal despite the gate."""
    partition = segmented_partition(skewed_weighted, 8)
    config = GumConfig(fsteal=True, osteal=False, cost_model="oracle")
    run = GumEngine(dgx1(8), config).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert sum(r.stolen_edges for r in run.iterations) > 0


def test_osteal_backoff_reduces_evaluations():
    """A long stable tail must not pay an enumeration every cooldown."""
    # long weighted path: hundreds of tiny iterations, stable decision
    n = 400
    a = np.arange(n - 1, dtype=np.int64)
    graph = with_random_weights(
        from_edge_arrays(a, a + 1, num_vertices=n, name="chain"), seed=1
    )
    partition = random_partition(graph, 8, seed=0)
    fast = GumConfig(cost_model="oracle", osteal_cooldown=5)
    run = GumEngine(dgx1(8), fast).run(graph, partition, "sssp", source=0)
    # count iterations charged with OSteal-scale overhead
    eval_cost = GumScheduler._modeled_osteal_seconds(8)
    evaluations = sum(
        1 for r in run.iterations
        if r.breakdown.overhead >= eval_cost
    )
    # without backoff this would be ~iterations/cooldown = ~80
    assert evaluations < run.num_iterations / 5 / 2
    assert run.converged


def test_explosive_regrowth_bypasses_backoff():
    """The 4x workload-growth trigger must fire even mid-backoff."""
    from repro.graph import erdos_renyi

    fuse = 80
    blob = erdos_renyi(500, 30_000, seed=0)
    bsrc, bdst = blob.edge_array()
    path = np.arange(fuse, dtype=np.int64)
    src = np.concatenate([path[:-1], [fuse - 1], bsrc + fuse])
    dst = np.concatenate([path[1:], [fuse], bdst + fuse])
    graph = from_edge_arrays(src, dst, name="fusebomb2")
    partition = random_partition(graph, 8, seed=0)
    config = GumConfig(cost_model="oracle", osteal_cooldown=5)
    run = GumEngine(dgx1(8), config).run(graph, partition, "bfs",
                                         source=0)
    sizes = run.group_size_series()
    assert min(sizes[:fuse]) < 4  # folded hard during the fuse
    # regrew within a few iterations of the explosion
    explosion = fuse
    assert max(sizes[explosion: explosion + 6]) == 8


def test_modeled_overhead_scales_with_workers():
    assert GumScheduler._modeled_osteal_seconds(8) == pytest.approx(
        2 * GumScheduler._modeled_osteal_seconds(4)
    )
    assert GumScheduler._modeled_fsteal_seconds(8, 0) > (
        GumScheduler._modeled_fsteal_seconds(2, 0)
    )
