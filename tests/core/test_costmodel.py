"""Unit tests for cost-model training and inference."""

import numpy as np
import pytest

from repro.core import (
    MODEL_FAMILIES,
    DecisionTreeModel,
    KernelRidgeModel,
    LinearSGDModel,
    OracleCostModel,
    PolynomialSGDModel,
    UniformCostModel,
    collect_training_data,
    rmsre,
)
from repro.core.costmodel import _polynomial_expand
from repro.errors import CostModelError
from repro.graph import rmat, road_network, web_graph
from repro.graph.features import FrontierFeatures


@pytest.fixture(scope="module")
def training_set():
    graphs = [
        rmat(8, 8, seed=1),
        web_graph(800, 8, seed=2),
        road_network(8, 40, seed=3),
    ]
    return collect_training_data(graphs, algorithms=("bfs", "sssp"),
                                 num_fragments=4, seed=0)


def test_rmsre():
    actual = np.array([1.0, 2.0, 4.0])
    assert rmsre(actual, actual) == 0.0
    assert rmsre(actual * 1.1, actual) == pytest.approx(0.1)
    with pytest.raises(CostModelError):
        rmsre(np.array([]), np.array([]))
    with pytest.raises(CostModelError):
        rmsre(np.array([1.0]), np.array([0.0]))


def test_polynomial_expand_counts():
    x = np.random.default_rng(0).random((5, 3))
    expanded = _polynomial_expand(x, 2)
    # 1 + 3 linear + 6 quadratic (with cross terms)
    assert expanded.shape == (5, 10)
    assert np.allclose(expanded[:, 0], 1.0)


def test_collect_training_data_shapes(training_set):
    features, costs = training_set
    assert features.ndim == 2 and features.shape[1] == 6
    assert costs.shape == (features.shape[0],)
    assert np.all(costs > 0)
    assert features.shape[0] > 50


@pytest.mark.parametrize("family", sorted(MODEL_FAMILIES))
def test_families_fit_and_predict(family, training_set):
    features, costs = training_set
    model = MODEL_FAMILIES[family]()
    report = model.fit(features, costs)
    assert report.model == model.name
    assert report.train_seconds >= 0
    predictions = model.predict(features)
    assert predictions.shape == costs.shape
    assert np.all(predictions > 0)
    assert report.train_rmsre == pytest.approx(
        rmsre(predictions, costs)
    )


@pytest.mark.parametrize("family", sorted(MODEL_FAMILIES))
def test_families_beat_uniform(family, training_set):
    features, costs = training_set
    model = MODEL_FAMILIES[family]()
    model.fit(features, costs)
    uniform = UniformCostModel()
    uniform.fit(features, costs)
    assert rmsre(model.predict(features), costs) < rmsre(
        uniform.predict(features), costs
    )


def test_polynomial_beats_linear(training_set):
    features, costs = training_set
    poly = PolynomialSGDModel()
    linear = LinearSGDModel()
    poly_report = poly.fit(features, costs)
    linear_report = linear.fit(features, costs)
    assert poly_report.train_rmsre < linear_report.train_rmsre


def test_generalization(training_set):
    features, costs = training_set
    rng = np.random.default_rng(0)
    order = rng.permutation(costs.size)
    split = int(0.8 * costs.size)
    train, test = order[:split], order[split:]
    model = PolynomialSGDModel()
    model.fit(features[train], costs[train])
    test_error = rmsre(model.predict(features[test]), costs[test])
    uniform = UniformCostModel()
    uniform.fit(features[train], costs[train])
    uniform_error = rmsre(uniform.predict(features[test]), costs[test])
    # generalizes (held-out split), not just memorizes: better than the
    # constant predictor even on this ~300-sample corpus, and close to
    # its own training error (no runaway overfit, unlike exact WLS on
    # 210 parameters would be)
    assert test_error < uniform_error
    train_error = rmsre(model.predict(features[train]), costs[train])
    assert test_error < 2.0 * train_error


def test_predict_before_fit_raises():
    for model in (PolynomialSGDModel(), DecisionTreeModel(),
                  KernelRidgeModel()):
        with pytest.raises(CostModelError, match="before fit"):
            model.predict(np.zeros((1, 6)))


def test_fit_input_validation():
    model = PolynomialSGDModel()
    with pytest.raises(CostModelError):
        model.fit(np.zeros((0, 6)), np.zeros(0))
    with pytest.raises(CostModelError, match="positive"):
        model.fit(np.zeros((2, 6)), np.array([1.0, 0.0]))
    with pytest.raises(CostModelError, match="degree"):
        PolynomialSGDModel(degree=0)
    with pytest.raises(CostModelError):
        LinearSGDModel(degree=3)


def test_oracle_matches_device_model():
    oracle = OracleCostModel()
    features = FrontierFeatures(
        avg_in_degree=5.0, avg_out_degree=4.0, in_degree_range=10.0,
        out_degree_range=12.0, gini=0.4, entropy=0.7, size=1,
        total_edges=1,
    )
    direct = oracle.edge_cost_seconds(features)
    via_matrix = oracle.predict(features.vector()[None, :])[0]
    assert direct == pytest.approx(via_matrix)


def test_uniform_fits_geometric_mean(training_set):
    features, costs = training_set
    model = UniformCostModel()
    model.fit(features, costs)
    expected = float(np.exp(np.mean(np.log(costs))))
    assert model.predict(features[:3])[0] == pytest.approx(expected)


def test_edge_cost_seconds_convenience(training_set):
    features, costs = training_set
    model = DecisionTreeModel()
    model.fit(features, costs)
    sample = FrontierFeatures(
        avg_in_degree=features[0, 0], avg_out_degree=features[0, 1],
        in_degree_range=features[0, 2], out_degree_range=features[0, 3],
        gini=features[0, 4], entropy=features[0, 5], size=5,
        total_edges=20,
    )
    assert model.edge_cost_seconds(sample) == pytest.approx(
        model.predict(features[0][None, :])[0]
    )


def test_training_is_deterministic(training_set):
    features, costs = training_set
    a = PolynomialSGDModel(seed=7)
    b = PolynomialSGDModel(seed=7)
    a.fit(features, costs)
    b.fit(features, costs)
    assert np.allclose(a.predict(features), b.predict(features))


def test_kernel_ridge_constant_feature_corpus():
    """All-duplicate training rows must not poison gamma with NaN.

    Regression test: the median-heuristic bandwidth divided by the
    median pairwise distance, which is 0 when every row is identical,
    so gamma became inf/NaN and every prediction came out NaN.
    """
    rows = np.tile(np.array([4.0, 2.0, 1.0, 8.0, 3.0, 5.0]), (32, 1))
    costs = np.full(32, 2.5e-9)
    model = KernelRidgeModel()
    model.fit(rows, costs)
    assert np.isfinite(model._gamma) and model._gamma > 0
    prediction = model.predict(rows[:4])
    assert np.all(np.isfinite(prediction))
    assert np.all(prediction > 0)
    # the model should reproduce the constant corpus cost closely
    assert prediction == pytest.approx(2.5e-9, rel=0.2)


def test_tree_predict_batch_matches_single_rows(training_set):
    features, costs = training_set
    model = DecisionTreeModel()
    model.fit(features, costs)
    batch = model.predict(features[:64])
    singles = np.array([
        float(model.predict(features[i:i + 1])[0]) for i in range(64)
    ])
    assert np.array_equal(batch, singles)
