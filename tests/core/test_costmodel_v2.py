"""Cost-model v2: registry harvesting, candidate fitting, artifacts.

The contracts under test:

* ``repro-costmodel/1`` artifacts round-trip every serializable family
  **bit-identically** — a model loaded from disk predicts the exact
  same floats as the one that was saved — and reject tampering.
* ``harvest`` deduplicates byte-identical workload fingerprints but
  never merges distinct ones, skips unledgered/sample-free runs
  loudly, and keeps per-row provenance (run, iteration, GPU).
* ``fit_candidates`` scores every candidate family and the shipped
  polynomial on the *same* held-out folds, and validates its knobs.
* the facade accepts an artifact path anywhere a cost model goes and
  stamps the stable artifact label (not the path) into the ledger.
"""

import json

import numpy as np
import pytest

import repro
from repro.chaos import ChaosController, ChaosScenario, FaultSpec
from repro.core import GumConfig
from repro.core.costmodel import (
    MODEL_FAMILIES,
    DecisionTreeModel,
    UniformCostModel,
    pretrained_default,
    rmsre,
)
from repro.core.costmodel_v2 import (
    CANDIDATE_FAMILIES,
    COSTMODEL_SCHEMA,
    artifact_label,
    fit_candidates,
    harvest,
    load_artifact,
    model_from_params,
    model_to_params,
    save_artifact,
)
from repro.errors import CostModelError, EngineError
from repro.hardware import dgx1
from repro.partition import random_partition
from repro.runs import RunRegistry, workload_fingerprint
from repro.runtime import BSPEngine


@pytest.fixture(scope="module")
def gum_result(skewed_graph, source):
    return repro.run(skewed_graph, "bfs", num_gpus=4, source=source)


@pytest.fixture(scope="module")
def pr_result(skewed_graph):
    # PageRank runs far more supersteps than BFS on the tiny skewed
    # graph, so its ledger is the better training corpus
    return repro.run(skewed_graph, "pr", num_gpus=4)


@pytest.fixture(scope="module")
def training(gum_result):
    """(features, costs) straight from a real run's ledger."""
    samples = gum_result.ledger.export_samples()
    return samples.features, samples.costs


@pytest.fixture()
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs")


def _record(registry, result, algorithm="bfs", **overrides):
    workload = workload_fingerprint(
        engine="gum", algorithm=algorithm, graph="skewed",
        num_gpus=4, **overrides,
    )
    return registry.record_result(result, workload)


# ----------------------------------------------------------------------
# Artifact round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(MODEL_FAMILIES))
def test_artifact_roundtrip_is_bit_identical(family, training, tmp_path):
    X, y = training
    model = MODEL_FAMILIES[family]()
    model.fit(X, y)
    path = tmp_path / f"{family}.json"
    artifact = save_artifact(model, path)
    assert artifact["schema"] == COSTMODEL_SCHEMA
    loaded = load_artifact(path)
    # exact equality: an artifact is the model, not an approximation
    assert np.array_equal(loaded.predict(X), model.predict(X))
    assert loaded.artifact_label == artifact_label(artifact)
    assert loaded.artifact_label.startswith(
        f"artifact:{artifact['family']}@"
    )


def test_uniform_model_roundtrips(tmp_path):
    model = UniformCostModel(cost_seconds=3.5e-9)
    path = tmp_path / "uniform.json"
    save_artifact(model, path)
    loaded = load_artifact(path)
    X = np.ones((4, 6))
    assert np.array_equal(loaded.predict(X), model.predict(X))


def test_artifact_label_is_content_addressed(training, tmp_path):
    X, y = training
    labels = []
    for name in ("a.json", "b.json"):
        model = MODEL_FAMILIES["tree"]()
        model.fit(X, y)
        labels.append(
            artifact_label(save_artifact(model, tmp_path / name))
        )
    # the tree fit is deterministic, so both fits serialize to the
    # same parameters and therefore the same digest — the label names
    # the model, not the file it happens to live in
    assert labels[0] == labels[1]


def test_tampered_artifact_is_rejected(training, tmp_path):
    X, y = training
    model = MODEL_FAMILIES["tree"]()
    model.fit(X, y)
    path = tmp_path / "model.json"
    save_artifact(model, path)
    artifact = json.loads(path.read_text())
    artifact["parameters"]["node_value"][0] += 1.0
    path.write_text(json.dumps(artifact))
    with pytest.raises(CostModelError, match="digest"):
        load_artifact(path)


def test_wrong_schema_is_rejected(tmp_path):
    path = tmp_path / "model.json"
    path.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(CostModelError, match="schema"):
        load_artifact(path)


def test_corrupt_json_is_rejected(tmp_path):
    path = tmp_path / "model.json"
    path.write_text("{not json")
    with pytest.raises(CostModelError, match="corrupt"):
        load_artifact(path)


def test_missing_file_is_rejected(tmp_path):
    with pytest.raises(CostModelError, match="cannot read"):
        load_artifact(tmp_path / "absent.json")


def test_unfitted_model_cannot_serialize():
    with pytest.raises(CostModelError, match="unfitted"):
        model_to_params(DecisionTreeModel())


def test_unknown_family_cannot_deserialize():
    with pytest.raises(CostModelError, match="family"):
        model_from_params("perceptron", {})


# ----------------------------------------------------------------------
# Harvesting
# ----------------------------------------------------------------------
def test_harvest_keeps_row_provenance(registry, gum_result):
    run_id = _record(registry, gum_result)
    corpus = harvest(registry)
    assert len(corpus) > 0
    n = len(corpus)
    assert corpus.features.shape == (n, 6)
    for column in (corpus.costs, corpus.iterations, corpus.gpus,
                   corpus.run_index):
        assert column.shape == (n,)
    assert [run.run_id for run in corpus.runs] == [run_id]
    assert set(np.unique(corpus.run_index)) == {0}
    assert corpus.gpus.min() >= 0 and corpus.gpus.max() < 4
    assert corpus.iterations.min() >= 0
    assert np.all(corpus.costs > 0)
    assert corpus.duplicates == [] and corpus.empty_runs == []


def test_harvest_dedups_identical_fingerprints(registry, gum_result):
    first = _record(registry, gum_result)
    second = _record(registry, gum_result)
    corpus = harvest(registry)
    # the virtual clock is deterministic: same fingerprint means a
    # byte-identical ledger, so the second run must not double-weight
    assert [run.run_id for run in corpus.runs] == [first]
    assert corpus.duplicates == [
        {"run_id": second, "duplicate_of": first}
    ]


def test_harvest_pools_but_never_merges_mixed_fingerprints(
    registry, gum_result, pr_result
):
    bfs_id = _record(registry, gum_result)
    pr_id = _record(registry, pr_result, algorithm="pr")
    corpus = harvest(registry)
    # two incommensurable workloads: both harvested, each row still
    # attributable to its own run — dedup must not have merged them
    assert [run.run_id for run in corpus.runs] == [bfs_id, pr_id]
    assert set(np.unique(corpus.run_index)) == {0, 1}
    per_run = [int((corpus.run_index == i).sum()) for i in (0, 1)]
    assert per_run == [run.samples for run in corpus.runs]
    assert corpus.duplicates == []


def test_harvest_skips_unledgered_runs(registry, skewed_graph,
                                       source, gum_result):
    bsp = BSPEngine(dgx1(4)).run(
        skewed_graph, random_partition(skewed_graph, 4, seed=0),
        "bfs", source=source,
    )
    bsp_id = _record(registry, bsp)
    gum_id = _record(registry, gum_result, cost_model="default2")
    corpus = harvest(registry)
    assert corpus.empty_runs == [bsp_id]
    assert [run.run_id for run in corpus.runs] == [gum_id]


def test_harvest_with_nothing_usable_raises(registry, skewed_graph,
                                            source):
    bsp = BSPEngine(dgx1(4)).run(
        skewed_graph, random_partition(skewed_graph, 4, seed=0),
        "bfs", source=source,
    )
    _record(registry, bsp)
    with pytest.raises(CostModelError, match="no harvestable runs"):
        harvest(registry)


def test_harvest_explicit_refs(registry, gum_result):
    run_id = _record(registry, gum_result)
    corpus = harvest(registry, refs=[run_id])
    assert [run.run_id for run in corpus.runs] == [run_id]
    assert corpus.runs[0].model == "default"
    assert corpus.runs[0].workload["algorithm"] == "bfs"


def test_harvest_no_amortize_run(registry, skewed_graph, source,
                                 gum_result):
    raw = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                    gum_config=GumConfig(amortize=False))
    raw_id = _record(registry, raw, amortize=False)
    amortized_id = _record(registry, gum_result)
    corpus = harvest(registry)
    # amortize joins the fingerprint: the two runs are distinct
    # workloads and both contribute samples
    assert [run.run_id for run in corpus.runs] == [raw_id,
                                                   amortized_id]
    assert corpus.runs[0].samples > 0


def test_harvest_chaos_evicted_worker_run(registry, skewed_graph,
                                          source):
    chaos = ChaosController(ChaosScenario(
        faults=(FaultSpec("kill_worker", 1, {"worker": 2}),), seed=0,
    ))
    result = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                       chaos=chaos)
    assert result.chaos["faults_injected"] >= 1
    run_id = _record(registry, result, chaos="kill-worker")
    corpus = harvest(registry)
    # eviction mid-run must not corrupt the sample stream: every
    # surviving row still names a valid GPU and a positive cost
    assert [run.run_id for run in corpus.runs] == [run_id]
    assert len(corpus) > 0
    assert corpus.gpus.max() < 4
    assert np.all(corpus.costs > 0)


# ----------------------------------------------------------------------
# Candidate fitting
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def own_corpus(tmp_path_factory, pr_result):
    registry = RunRegistry(tmp_path_factory.mktemp("reg") / "runs")
    _record(registry, pr_result, algorithm="pr")
    return harvest(registry)


def test_fit_candidates_scores_all_families(own_corpus):
    outcome = fit_candidates(own_corpus, folds=3, seed=0)
    assert set(outcome.candidates) == set(CANDIDATE_FAMILIES)
    for report in outcome.candidates.values():
        assert len(report.fold_rmsre) == 3
        assert report.cv_rmsre == pytest.approx(
            np.mean(report.fold_rmsre)
        )
    assert outcome.baseline.family == "shipped-polynomial"
    assert len(outcome.baseline.fold_rmsre) == 3
    assert outcome.family in CANDIDATE_FAMILIES
    # the winner is the argmin over held-out scores
    assert outcome.holdout_rmsre == min(
        r.cv_rmsre for r in outcome.candidates.values()
    )
    json.dumps(outcome.report())  # the --report payload is pure JSON


def test_fit_single_family_with_fractional_holdout(own_corpus):
    outcome = fit_candidates(own_corpus, model="tree",
                             holdout_frac=0.25, seed=0)
    assert list(outcome.candidates) == ["tree"]
    assert outcome.folds == 1
    assert len(outcome.candidates["tree"].fold_rmsre) == 1
    assert outcome.holdout_frac == 0.25


def test_fit_beats_shipped_in_sample(own_corpus):
    # the tree can memorize its own run's ledger: its train RMSRE
    # must undercut the shipped polynomial scored on the same rows
    outcome = fit_candidates(own_corpus, model="tree", folds=3)
    shipped = rmsre(
        pretrained_default().predict(own_corpus.features),
        own_corpus.costs,
    )
    assert outcome.train_rmsre < shipped


def test_fit_is_deterministic_given_seed(own_corpus):
    a = fit_candidates(own_corpus, model="tree", folds=3, seed=7)
    b = fit_candidates(own_corpus, model="tree", folds=3, seed=7)
    assert a.candidates["tree"].fold_rmsre == \
        b.candidates["tree"].fold_rmsre


def test_fit_knob_validation(own_corpus):
    with pytest.raises(CostModelError, match="holdout fraction"):
        fit_candidates(own_corpus, holdout_frac=1.5)
    with pytest.raises(CostModelError, match="folds"):
        fit_candidates(own_corpus, folds=1)
    with pytest.raises(CostModelError, match="unknown model family"):
        fit_candidates(own_corpus, model="perceptron")


# ----------------------------------------------------------------------
# Facade integration
# ----------------------------------------------------------------------
def test_run_accepts_artifact_path(skewed_graph, source, training,
                                   tmp_path):
    X, y = training
    model = MODEL_FAMILIES["tree"]()
    model.fit(X, y)
    path = tmp_path / "model.json"
    artifact = save_artifact(model, path)
    result = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                       cost_model=str(path))
    # the ledger names the stable content digest, not the local path
    assert result.ledger.model == artifact_label(artifact)


def test_cost_model_rejected_outside_gum(skewed_graph, source):
    with pytest.raises(EngineError, match="gum"):
        repro.run(skewed_graph, "bfs", engine="bsp", num_gpus=4,
                  source=source, cost_model="uniform")


def test_unknown_cost_model_spec_is_engine_error(skewed_graph, source):
    with pytest.raises(EngineError):
        repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                  cost_model="no-such-model-or-file.json")
