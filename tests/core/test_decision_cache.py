"""Decision-amortization layer: fingerprints, cache, warm starts.

The invariant everything here protects: amortization may only change
*when* a solver runs, never *whether the plan is feasible*. Cached
plans are repaired and re-validated against the live problem; warm
starts are advisory seeds; a stale entry degrades to a miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GumConfig, GumEngine
from repro.core.decision_cache import (
    LruDict,
    PlanCache,
    plan_fingerprint,
    quantize,
    repair_assignment,
)
from repro.core.milp import FStealProblem, make_solver
from repro.errors import SolverError
from repro.hardware import dgx1
from repro.partition import random_partition, segmented_partition


def _problem(n_frag=4, n_work=4, seed=0, forbid=()):
    rng = np.random.default_rng(seed)
    costs = rng.uniform(1e-6, 3e-6, size=(n_frag, n_work))
    for (i, j) in forbid:
        costs[i, j] = np.inf
    workloads = rng.integers(50, 500, size=n_frag)
    return FStealProblem(costs, workloads)


# ----------------------------------------------------------------------
# quantize: log buckets, sentinels, exact mode
# ----------------------------------------------------------------------
def test_quantize_tolerant_to_small_drift():
    # values at bucket centers ((1+tol)^k) tolerate sub-tol/2 drift
    base = 1.05 ** np.array([10.0, 20.0, 40.0])
    drifted = base * 1.01
    assert quantize(base, 0.05) == quantize(drifted, 0.05)


def test_quantize_separates_large_drift():
    base = np.array([100.0, 200.0, 400.0])
    moved = base * 1.5
    assert quantize(base, 0.05) != quantize(moved, 0.05)


def test_quantize_zero_and_inf_sentinels():
    a = quantize(np.array([0.0, 1.0]), 0.05)
    b = quantize(np.array([np.inf, 1.0]), 0.05)
    c = quantize(np.array([1e-300, 1.0]), 0.05)
    assert a != b
    assert a != c  # a tiny positive value is not "zero"


def test_quantize_exact_mode_is_bit_pattern():
    base = np.array([100.0, 200.0])
    assert quantize(base, 0.0) == base.tobytes()
    assert quantize(base, 0.0) != quantize(base * (1 + 1e-12), 0.0)


# ----------------------------------------------------------------------
# plan_fingerprint: key structure
# ----------------------------------------------------------------------
def test_fingerprint_derives_active_set_from_finite_columns():
    problem = _problem(forbid=[(0, 3), (1, 3), (2, 3), (3, 3)])
    key = plan_fingerprint(problem.costs, problem.workloads, 0.05)
    assert key[0] == (4, 4)
    assert key[1] == (0, 1, 2)  # column 3 is fully forbidden


def test_fingerprint_explicit_active_overrides():
    problem = _problem()
    key = plan_fingerprint(
        problem.costs, problem.workloads, 0.05, active=[0, 2]
    )
    assert key[1] == (0, 2)


def test_fingerprint_changes_on_cost_coefficient_change():
    """A mid-run cost-model change can never reuse stale plans."""
    problem = _problem()
    before = plan_fingerprint(problem.costs, problem.workloads, 0.05)
    after = plan_fingerprint(
        problem.costs * 2.0, problem.workloads, 0.05
    )
    assert before != after


def test_fingerprint_changes_when_active_set_shrinks():
    """OSteal evicting a worker (inf column) changes the key."""
    problem = _problem()
    wide = plan_fingerprint(problem.costs, problem.workloads, 0.05)
    evicted = problem.costs.copy()
    evicted[:, 3] = np.inf
    narrow = plan_fingerprint(evicted, problem.workloads, 0.05)
    assert wide != narrow


# ----------------------------------------------------------------------
# LruDict
# ----------------------------------------------------------------------
def test_lru_dict_bounds_and_evicts_stalest():
    lru = LruDict(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.get("a")  # refresh recency: "b" is now stalest
    lru.put("c", 3)
    assert "a" in lru and "c" in lru and "b" not in lru
    assert lru.evictions == 1
    assert len(lru) == 2


def test_lru_dict_get_or_create():
    lru = LruDict(4)
    made = lru.get_or_create("k", dict)
    assert lru.get_or_create("k", dict) is made


def test_lru_dict_rejects_nonpositive_capacity():
    with pytest.raises(SolverError, match="max_entries"):
        LruDict(0)


# ----------------------------------------------------------------------
# repair_assignment
# ----------------------------------------------------------------------
def test_repair_identity_when_row_sums_match():
    problem = _problem()
    solution = make_solver("greedy").solve(problem)
    repaired = repair_assignment(solution.assignment, problem)
    assert np.array_equal(repaired, solution.assignment)


def test_repair_rescales_to_new_workloads():
    problem = _problem()
    solution = make_solver("greedy").solve(problem)
    grown = FStealProblem(problem.costs, problem.workloads * 2 + 7)
    repaired = repair_assignment(solution.assignment, grown)
    grown.validate_assignment(repaired)  # conserves the new l_i exactly


def test_repair_pulls_work_off_forbidden_workers():
    problem = _problem()
    solution = make_solver("greedy").solve(problem)
    evicted_costs = problem.costs.copy()
    evicted_costs[:, solution.assignment.sum(axis=0).argmax()] = np.inf
    evicted = FStealProblem(evicted_costs, problem.workloads)
    repaired = repair_assignment(solution.assignment, evicted)
    evicted.validate_assignment(repaired)


def test_repair_seeds_previously_empty_rows():
    problem = _problem()
    stale = np.zeros_like(problem.costs, dtype=np.int64)
    repaired = repair_assignment(stale, problem)
    problem.validate_assignment(repaired)


def test_repair_refuses_shape_mismatch_and_negatives():
    problem = _problem(n_frag=4, n_work=4)
    assert repair_assignment(np.zeros((2, 2), dtype=np.int64),
                             problem) is None
    bad = np.zeros((4, 4), dtype=np.int64)
    bad[0, 0] = -1
    assert repair_assignment(bad, problem) is None


# ----------------------------------------------------------------------
# PlanCache
# ----------------------------------------------------------------------
def test_plan_cache_miss_store_hit_roundtrip():
    cache = PlanCache(max_entries=8, tolerance=0.05)
    problem = _problem()
    key = cache.fingerprint(problem.costs, problem.workloads)
    assert cache.fetch(key, problem) is None
    solution = make_solver("greedy").solve(problem)
    cache.store(key, solution.assignment)
    fetched = cache.fetch(key, problem)
    assert np.array_equal(fetched, solution.assignment)
    assert cache.stats() == {
        "hits": 1, "misses": 1, "invalidations": 0,
        "evictions": 0, "entries": 1,
    }


def test_plan_cache_hit_repairs_within_tolerance_drift():
    cache = PlanCache(max_entries=8, tolerance=0.05)
    rng = np.random.default_rng(0)
    # workloads at quantization-bucket centers: a 0.2% drift stays put
    workloads = np.round(1.05 ** np.array([220.0, 222.0, 224.0, 226.0]))
    problem = FStealProblem(
        rng.uniform(1e-6, 3e-6, size=(4, 4)),
        workloads.astype(np.int64),
    )
    key = cache.fingerprint(problem.costs, problem.workloads)
    cache.store(key, make_solver("greedy").solve(problem).assignment)
    # the workload vector drifts but stays inside the same buckets
    drifted = FStealProblem(
        problem.costs,
        np.maximum(1, (problem.workloads * 1.002).astype(np.int64)),
    )
    drifted_key = cache.fingerprint(drifted.costs, drifted.workloads)
    assert drifted_key == key
    fetched = cache.fetch(drifted_key, drifted)
    drifted.validate_assignment(fetched)


def test_plan_cache_invalidates_unrepairable_entry():
    """A shrunk cost matrix (post-eviction) reads as a miss, not a plan."""
    cache = PlanCache(max_entries=8, tolerance=0.05)
    wide = _problem(n_frag=4, n_work=8, seed=1)
    narrow = _problem(n_frag=4, n_work=4, seed=1)
    key = cache.fingerprint(narrow.costs, narrow.workloads)
    cache.store(key, make_solver("greedy").solve(wide).assignment)
    assert cache.fetch(key, narrow) is None
    stats = cache.stats()
    assert stats["invalidations"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 0  # the stale entry was dropped


def test_plan_cache_lru_bound_evicts():
    cache = PlanCache(max_entries=2, tolerance=0.05)
    problems = [_problem(seed=s) for s in range(3)]
    for problem in problems:
        key = cache.fingerprint(problem.costs, problem.workloads)
        cache.store(key, make_solver("greedy").solve(problem).assignment)
    assert cache.stats()["evictions"] == 1
    oldest = cache.fingerprint(problems[0].costs, problems[0].workloads)
    assert cache.fetch(oldest, problems[0]) is None


# ----------------------------------------------------------------------
# Warm-started solvers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["greedy", "lp", "bnb", "highs"])
def test_warm_start_never_degrades_solution(name):
    problem = _problem(n_frag=8, n_work=4, seed=3)
    solver = make_solver(name)
    cold = solver.solve(problem)
    warm = solver.solve(problem, warm_start=cold.assignment)
    problem.validate_assignment(warm.assignment)
    assert warm.objective <= cold.objective + 1e-15


@pytest.mark.parametrize("name", ["greedy", "lp", "bnb", "highs"])
def test_infeasible_warm_start_is_ignored(name):
    problem = _problem(n_frag=8, n_work=4, seed=3)
    solver = make_solver(name)
    cold = solver.solve(problem)
    junk = np.full_like(cold.assignment, 10**6)
    warm = solver.solve(problem, warm_start=junk)
    assert warm.objective == cold.objective
    assert not warm.warm_started


def test_greedy_adopts_warm_start_only_on_strict_improvement():
    problem = _problem(n_frag=8, n_work=4, seed=3)
    solver = make_solver("greedy")
    cold = solver.solve(problem)
    # re-seeding with its own answer cannot strictly improve it
    again = solver.solve(problem, warm_start=cold.assignment)
    assert not again.warm_started
    assert again.objective == cold.objective


# ----------------------------------------------------------------------
# Scheduler integration: the edge cases the cache must survive
# ----------------------------------------------------------------------
def _run(graph, algorithm, config, gpus=8, **params):
    partition = random_partition(graph, gpus, seed=0)
    return GumEngine(dgx1(gpus), config=config).run(
        graph, partition, algorithm, **params
    )


def test_amortized_run_matches_exact_run(road_graph):
    """Long-tail regime: OSteal folds the group, evicting workers —
    the cache sees the active set shrink and must stay feasible."""
    from repro.graph import with_random_weights

    weighted = with_random_weights(road_graph, seed=1)
    exact = _run(weighted, "sssp",
                 GumConfig(cost_model="oracle", amortize=False), source=0)
    amortized = _run(weighted, "sssp",
                     GumConfig(cost_model="oracle", amortize=True),
                     source=0)
    assert np.array_equal(exact.values, amortized.values)
    assert exact.num_iterations == amortized.num_iterations
    assert min(amortized.group_size_series()) < 8  # OSteal did evict
    stats = amortized.decision_stats
    assert stats["amortize"] is True
    assert stats["misses"] > 0  # cold starts happened
    assert not exact.decision_stats.get("amortize", False)


def test_decision_stats_surface_cache_activity(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    result = GumEngine(
        dgx1(8), config=GumConfig(cost_model="oracle")
    ).run(skewed_weighted, partition, "sssp", source=source)
    stats = result.decision_stats
    for key in ("hits", "misses", "invalidations", "evictions",
                "warm_accepts", "osteal_z_reused",
                "osteal_z_evaluated", "osteal_invalidations"):
        assert key in stats
    assert stats["hits"] + stats["misses"] >= 0


def test_zero_iteration_run_reports_empty_stats(tiny_graph):
    result = _run(tiny_graph, "bfs",
                  GumConfig(cost_model="oracle"), gpus=2, source=0)
    zero = GumEngine(
        dgx1(2), config=GumConfig(cost_model="oracle")
    ).run(tiny_graph, random_partition(tiny_graph, 2, seed=0), "bfs",
          max_iterations=0, source=0)
    assert not zero.converged
    assert zero.num_iterations == 0
    stats = zero.decision_stats
    assert stats["amortize"] is True
    assert stats["hits"] == 0 and stats["misses"] == 0
    assert result.num_iterations > 0  # sanity: the graph does run


def test_exact_mode_reports_disabled_stats(tiny_graph):
    result = _run(tiny_graph, "bfs",
                  GumConfig(cost_model="oracle", amortize=False),
                  gpus=2, source=0)
    stats = result.decision_stats
    assert stats["amortize"] is False
    assert stats["hits"] == 0 and stats["warm_accepts"] == 0


# ----------------------------------------------------------------------
# Property: amortized plans are feasible and near the exact optimum
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_frag=st.integers(2, 6),
    n_work=st.integers(2, 4),
    drift=st.floats(0.9, 1.1),
)
def test_cached_and_warm_plans_feasible_near_optimal(
    seed, n_frag, n_work, drift
):
    """Repaired cached plans and warm-started solves stay feasible and
    within 1.5x of the cold HiGHS optimum under workload drift."""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(1e-6, 2e-6, size=(n_frag, n_work))
    workloads = rng.integers(1, 1000, size=n_frag)
    problem = FStealProblem(costs, workloads)
    greedy = make_solver("greedy")
    cached = greedy.solve(problem).assignment

    drifted = FStealProblem(
        costs, np.maximum(1, (workloads * drift).astype(np.int64))
    )
    optimum = make_solver("highs").solve(drifted).objective

    repaired = repair_assignment(cached, drifted)
    drifted.validate_assignment(repaired)  # always feasible
    assert drifted.objective(repaired) <= 1.5 * optimum + 1e-12

    warm = greedy.solve(drifted, warm_start=cached)
    drifted.validate_assignment(warm.assignment)
    assert warm.objective <= 1.5 * optimum + 1e-12
