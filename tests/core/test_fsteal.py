"""Unit tests for FSteal: cost matrix and vertex selection (Algorithm 1)."""

import numpy as np
import pytest

from repro import config
from repro.core import (
    FStealProblem,
    OracleCostModel,
    build_cost_matrix,
    make_solver,
    plan_fsteal,
    select_vertices,
)
from repro.errors import SolverError
from repro.graph.features import frontier_features
from repro.hardware import dgx1, measure_comm_cost_matrix
from repro.runtime import Frontier


@pytest.fixture()
def comm_cost(topology8):
    return measure_comm_cost_matrix(topology8, config.BYTES_PER_EDGE,
                                    seed=0)


def fragment_features(graph, partition_vertices):
    return [frontier_features(graph, v) for v in partition_vertices]


def test_cost_matrix_structure(skewed_graph, comm_cost):
    frontiers = [
        np.arange(i * 10, i * 10 + 10, dtype=np.int64) for i in range(8)
    ]
    features = fragment_features(skewed_graph, frontiers)
    home = np.arange(8, dtype=np.int64)
    costs = build_cost_matrix(
        comm_cost, features, OracleCostModel(), home,
        allowed_workers=[0, 1, 2, 3],
    )
    assert costs.shape == (8, 8)
    assert np.all(np.isinf(costs[:, 4:]))
    assert np.all(np.isfinite(costs[:, :4]))
    # c_ij = 1/B_ij + g(W_i): the same g is added across the row, so
    # column differences equal communication-cost differences
    row_gap = costs[2, 1] - costs[2, 0]
    comm_gap = comm_cost[2, 1] - comm_cost[2, 0]
    assert row_gap == pytest.approx(comm_gap)


def test_cost_matrix_local_cheapest(skewed_graph, comm_cost):
    frontiers = [
        np.arange(i * 5, i * 5 + 5, dtype=np.int64) for i in range(8)
    ]
    features = fragment_features(skewed_graph, frontiers)
    home = np.arange(8, dtype=np.int64)
    costs = build_cost_matrix(comm_cost, features, OracleCostModel(), home)
    for i in range(8):
        assert costs[i, i] == costs[i].min()


def test_cost_matrix_no_workers(skewed_graph, comm_cost):
    features = fragment_features(skewed_graph, [np.array([0])])
    with pytest.raises(SolverError, match="no allowed"):
        build_cost_matrix(
            comm_cost, features, OracleCostModel(),
            np.zeros(1, dtype=np.int64), allowed_workers=[],
        )


# ----------------------------------------------------------------------
# select_vertices (Algorithm 1 lines 9-18)
# ----------------------------------------------------------------------
def test_select_vertices_partitions_frontier(skewed_graph):
    frontier = Frontier(np.arange(0, 300, 2))
    degrees = skewed_graph.out_degrees(frontier.vertices)
    total = int(degrees.sum())
    quotas = np.array([total // 4] * 3 + [total - 3 * (total // 4)]
                      + [0] * 4)
    chunks = select_vertices(skewed_graph, 2, frontier, quotas)
    covered = np.concatenate([c.vertices for c in chunks])
    assert np.array_equal(np.sort(covered), frontier.vertices)
    assert sum(c.edges for c in chunks) == total
    assert all(c.owner == 2 for c in chunks)
    # consecutive slices: each chunk's vertices are a contiguous run
    for chunk in chunks:
        lo = np.searchsorted(frontier.vertices, chunk.vertices[0])
        run = frontier.vertices[lo: lo + chunk.vertices.size]
        assert np.array_equal(run, chunk.vertices)


def test_select_vertices_quota_accuracy(skewed_graph):
    frontier = Frontier(np.arange(100, 500))
    degrees = skewed_graph.out_degrees(frontier.vertices)
    total = int(degrees.sum())
    quotas = np.array([total // 2, total - total // 2, 0, 0, 0, 0, 0, 0])
    chunks = select_vertices(skewed_graph, 0, frontier, quotas)
    max_degree = int(degrees.max())
    for chunk, quota in zip(chunks, quotas[quotas > 0]):
        assert abs(chunk.edges - quota) <= max_degree


def test_select_vertices_single_worker(skewed_graph):
    frontier = Frontier([3, 7, 11])
    total = frontier.work(skewed_graph)
    quotas = np.zeros(8, dtype=np.int64)
    quotas[5] = total
    chunks = select_vertices(skewed_graph, 1, frontier, quotas)
    assert len(chunks) == 1
    assert chunks[0].worker == 5
    assert chunks[0].edges == total


def test_select_vertices_validation(skewed_graph):
    frontier = Frontier([0, 1])
    total = frontier.work(skewed_graph)
    with pytest.raises(SolverError, match="do not match"):
        select_vertices(skewed_graph, 0, frontier,
                        np.array([total + 5, 0]))
    with pytest.raises(SolverError, match="empty frontier"):
        select_vertices(skewed_graph, 0, Frontier.empty(),
                        np.array([10]))
    assert select_vertices(skewed_graph, 0, Frontier.empty(),
                           np.array([0, 0])) == []


def test_plan_fsteal_end_to_end(skewed_graph, skewed_partition, comm_cost):
    frontier = Frontier(np.arange(0, skewed_graph.num_vertices, 3))
    fragments = [
        Frontier.from_sorted(part)
        for part in skewed_partition.split_frontier(frontier.vertices)
    ]
    workloads = np.array([f.work(skewed_graph) for f in fragments])
    features = [
        frontier_features(skewed_graph, f.vertices) for f in fragments
    ]
    costs = build_cost_matrix(
        comm_cost, features, OracleCostModel(),
        np.arange(8, dtype=np.int64),
    )
    solution, assignments = plan_fsteal(
        skewed_graph, fragments,
        FStealProblem(costs, workloads), make_solver("greedy"),
    )
    assert sum(a.edges for a in assignments) == int(workloads.sum())
    # the realized plan respects the solver's per-fragment totals
    for fragment in range(8):
        realized = sum(
            a.edges for a in assignments if a.owner == fragment
        )
        assert realized == int(workloads[fragment])
