"""Integration tests for the GUM engine and arbitrator."""

import numpy as np
import pytest

from repro.algorithms.validate import reference_bfs, reference_sssp
from repro.core import GumConfig, GumEngine, GumScheduler
from repro.errors import EngineError
from repro.graph import with_random_weights
from repro.hardware import dgx1
from repro.partition import random_partition, segmented_partition
from repro.runtime import BSPEngine


def gum(config=None, gpus=8):
    return GumEngine(dgx1(gpus), config=config)


# ----------------------------------------------------------------------
# Semantics: stealing never changes answers (metamorphic)
# ----------------------------------------------------------------------
def test_gum_bfs_correct(skewed_graph, skewed_partition, source,
                         oracle_config):
    result = gum(oracle_config).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )
    assert result.converged
    assert np.allclose(result.values, reference_bfs(skewed_graph, source))


def test_gum_sssp_matches_static_engine(skewed_weighted, source,
                                        oracle_config):
    partition = random_partition(skewed_weighted, 8, seed=0)
    stealing = gum(oracle_config).run(
        skewed_weighted, partition, "sssp", source=source
    )
    static = BSPEngine(dgx1(8)).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert np.array_equal(stealing.values, static.values)
    assert stealing.num_iterations == static.num_iterations


@pytest.mark.parametrize("algorithm", ["bfs", "sssp", "wcc", "pr"])
def test_all_switches_preserve_semantics(algorithm, skewed_weighted,
                                         skewed_symmetric, source):
    graph = skewed_symmetric if algorithm == "wcc" else skewed_weighted
    params = {"source": source} if algorithm in ("bfs", "sssp") else {}
    partition = random_partition(graph, 8, seed=0)
    baseline = None
    for fsteal in (False, True):
        for osteal in (False, True):
            config = GumConfig(
                fsteal=fsteal, osteal=osteal, cost_model="oracle",
            )
            result = gum(config).run(graph, partition, algorithm,
                                     **params)
            if baseline is None:
                baseline = result.values
            assert np.allclose(result.values, baseline)


# ----------------------------------------------------------------------
# DLB: FSteal reduces stall on skewed partitions
# ----------------------------------------------------------------------
def test_fsteal_reduces_stall(skewed_weighted, source):
    # a segmented partition of a skewed graph concentrates hubs
    partition = segmented_partition(skewed_weighted, 8)
    no_steal = GumConfig(fsteal=False, osteal=False, cost_model="oracle")
    steal = GumConfig(fsteal=True, osteal=False, cost_model="oracle")
    before = gum(no_steal).run(skewed_weighted, partition, "sssp",
                               source=source)
    after = gum(steal).run(skewed_weighted, partition, "sssp",
                           source=source)
    assert after.stall_fraction() < before.stall_fraction()
    assert after.total_seconds < before.total_seconds
    assert any(r.fsteal_applied for r in after.iterations)
    assert sum(r.stolen_edges for r in after.iterations) > 0


# ----------------------------------------------------------------------
# LT: OSteal folds the group on long-tail workloads
# ----------------------------------------------------------------------
def test_osteal_folds_on_long_tail(road_graph, oracle_config):
    weighted = with_random_weights(road_graph, seed=1)
    partition = random_partition(weighted, 8, seed=0)
    result = gum(oracle_config).run(weighted, partition, "sssp", source=0)
    sizes = result.group_size_series()
    assert min(sizes) < 8  # the group folded at least once
    no_osteal = GumConfig(osteal=False, cost_model="oracle")
    flat = gum(no_osteal).run(weighted, partition, "sssp", source=0)
    assert result.breakdown.sync < flat.breakdown.sync
    assert result.total_seconds < flat.total_seconds
    assert np.array_equal(result.values, flat.values)


def test_osteal_regrows_when_work_returns():
    # "fuse and bomb": a long path (tiny iterations -> fold) leading
    # into a dense random blob (explosion -> regrow)
    from repro.graph import erdos_renyi, from_edge_arrays

    fuse_len = 60
    blob = erdos_renyi(600, 40_000, seed=0)
    blob_src, blob_dst = blob.edge_array()
    path = np.arange(fuse_len, dtype=np.int64)
    src = np.concatenate([path[:-1], [fuse_len - 1],
                          blob_src + fuse_len])
    dst = np.concatenate([path[1:], [fuse_len],
                          blob_dst + fuse_len])
    graph = from_edge_arrays(src, dst, name="fusebomb")
    partition = random_partition(graph, 8, seed=0)
    config = GumConfig(cost_model="oracle", osteal_cooldown=2)
    result = gum(config).run(graph, partition, "bfs", source=0)
    sizes = result.group_size_series()
    assert min(sizes[:fuse_len]) < 8  # folded during the fuse
    assert max(sizes[fuse_len - 10:]) == 8  # regrew for the blob
    assert result.converged


# ----------------------------------------------------------------------
# Arbitrator mechanics
# ----------------------------------------------------------------------
def test_thresholds_gate_fsteal(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    never = GumConfig(
        fsteal=True, osteal=False, cost_model="oracle",
        t1_min_edges=10**9,
    )
    result = gum(never).run(skewed_weighted, partition, "sssp",
                            source=source)
    assert not any(r.fsteal_applied for r in result.iterations)


def test_overhead_modes(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    modeled = gum(GumConfig(cost_model="oracle",
                            overhead_mode="modeled")).run(
        skewed_weighted, partition, "sssp", source=source
    )
    none = gum(GumConfig(cost_model="oracle", overhead_mode="none")).run(
        skewed_weighted, partition, "sssp", source=source
    )
    measured = gum(GumConfig(cost_model="oracle",
                             overhead_mode="measured")).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert none.breakdown.overhead < modeled.breakdown.overhead
    assert measured.breakdown.overhead > 0
    assert measured.real_decision_seconds > 0
    with pytest.raises(EngineError, match="overhead mode"):
        gum(GumConfig(cost_model="oracle", overhead_mode="mystery")).run(
            skewed_weighted, partition, "sssp", source=source
        )


def test_modeled_overhead_is_deterministic(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    config = GumConfig(cost_model="oracle", overhead_mode="modeled")
    a = gum(config).run(skewed_weighted, partition, "sssp", source=source)
    b = gum(config).run(skewed_weighted, partition, "sssp", source=source)
    assert a.total_seconds == b.total_seconds


def test_scheduler_requires_begin_run(skewed_partition):
    scheduler = GumScheduler(GumConfig(cost_model="oracle"))
    with pytest.raises(EngineError, match="begin_run"):
        scheduler.plan(0, [], np.zeros(8, dtype=np.int64), None)


def test_config_validation():
    with pytest.raises(EngineError, match="cost model"):
        GumConfig(cost_model="magic").resolve_cost_model()


def test_hub_cache_reduces_remote_cost(skewed_weighted, source):
    partition = segmented_partition(skewed_weighted, 8)
    with_hub = GumConfig(cost_model="oracle", hub_cache=True,
                         t4_hub_in_degree=8)
    without = GumConfig(cost_model="oracle", hub_cache=False)
    cached = gum(with_hub).run(skewed_weighted, partition, "sssp",
                               source=source)
    plain = gum(without).run(skewed_weighted, partition, "sssp",
                             source=source)
    # same semantics, no more total time with the cache
    assert np.array_equal(cached.values, plain.values)
    assert cached.total_seconds <= plain.total_seconds + 1e-9


def test_p_estimate_converges(skewed_weighted, source, topology8):
    from repro.hardware import TimingModel

    partition = random_partition(skewed_weighted, 8, seed=0)
    scheduler = GumScheduler(GumConfig(cost_model="oracle"))
    engine = BSPEngine(topology8, scheduler=scheduler, name="gum")
    engine.run(skewed_weighted, partition, "sssp", source=source)
    timing = TimingModel(topology8)
    true_p = timing.sync.per_worker_us * 1e-6
    estimate = scheduler._state.p_estimate
    # the estimate includes the amortized barrier; stays in the ballpark
    assert 0.5 * true_p < estimate < 3.0 * true_p
