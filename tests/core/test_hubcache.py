"""Unit tests for hub-vertex caching."""

import numpy as np
import pytest

from repro.core import HubCache
from repro.graph import star


def test_star_hub_detection():
    graph = star(100)  # center has in-degree 100
    cache = HubCache(graph, in_degree_threshold=50)
    assert cache.num_hubs == 1
    assert cache.bitmap[0]
    assert not cache.bitmap[1:].any()
    # the center's adjacency (100 out-edges) is what gets replicated
    assert cache.cached_edges == 100


def test_threshold_semantics(skewed_graph):
    lo = HubCache(skewed_graph, in_degree_threshold=4)
    hi = HubCache(skewed_graph, in_degree_threshold=64)
    assert lo.num_hubs > hi.num_hubs
    in_deg = skewed_graph.in_degrees()
    assert np.array_equal(lo.bitmap, in_deg > 4)


def test_hub_edges_counts_only_hubs(skewed_graph):
    cache = HubCache(skewed_graph, in_degree_threshold=16)
    vertices = np.arange(0, 200, dtype=np.int64)
    hubs = vertices[cache.bitmap[vertices]]
    expected = int(skewed_graph.out_degrees(hubs).sum()) if hubs.size else 0
    assert cache.hub_edges(skewed_graph, vertices) == expected
    assert cache.hub_edges(skewed_graph,
                           np.array([], dtype=np.int64)) == 0


def test_hub_edges_bounded_by_frontier_work(skewed_graph):
    cache = HubCache(skewed_graph, in_degree_threshold=8)
    vertices = np.arange(50, 400, dtype=np.int64)
    total = int(skewed_graph.out_degrees(vertices).sum())
    assert 0 <= cache.hub_edges(skewed_graph, vertices) <= total


def test_memory_accounting(skewed_graph):
    from repro import config

    cache = HubCache(skewed_graph, in_degree_threshold=32)
    assert cache.memory_bytes_per_gpu() == (
        cache.cached_edges * config.BYTES_PER_EDGE
    )


def test_huge_threshold_means_no_hubs(skewed_graph):
    cache = HubCache(skewed_graph, in_degree_threshold=10**9)
    assert cache.num_hubs == 0
    assert cache.cached_edges == 0
    assert "hubs=0" in repr(cache)
