"""Unit tests for the FSteal min-max solvers."""

import numpy as np
import pytest

from repro.core import SOLVERS, FStealProblem, make_solver
from repro.errors import SolverError

ALL_SOLVERS = sorted(SOLVERS)


def simple_problem(n=4, seed=0, forbid=0.0):
    rng = np.random.default_rng(seed)
    costs = 1e-9 * (0.5 + rng.random((n, n)) * 2)
    if forbid:
        mask = rng.random((n, n)) < forbid
        np.fill_diagonal(mask, False)  # keep the home always allowed
        costs[mask] = np.inf
    loads = rng.integers(0, 50_000, n)
    return FStealProblem(costs, loads)


# ----------------------------------------------------------------------
# Problem validation
# ----------------------------------------------------------------------
def test_problem_validation():
    with pytest.raises(SolverError, match="2-D"):
        FStealProblem(np.zeros(3), np.zeros(3, dtype=np.int64))
    with pytest.raises(SolverError, match="one entry"):
        FStealProblem(np.zeros((2, 2)), np.zeros(3, dtype=np.int64))
    with pytest.raises(SolverError, match="negative"):
        FStealProblem(np.ones((2, 2)), np.array([-1, 2]))
    with pytest.raises(SolverError, match="negative"):
        FStealProblem(np.full((2, 2), -1.0), np.array([1, 1]))


def test_fragment_with_no_worker_rejected():
    costs = np.full((2, 2), np.inf)
    costs[0, 0] = 1.0
    with pytest.raises(SolverError, match="no allowed worker"):
        FStealProblem(costs, np.array([1, 1]))


def test_objective_and_validate():
    costs = np.array([[1.0, 2.0], [3.0, 1.0]])
    problem = FStealProblem(costs, np.array([10, 10]))
    assignment = np.array([[10, 0], [0, 10]])
    problem.validate_assignment(assignment)
    assert problem.objective(assignment) == pytest.approx(10.0)
    with pytest.raises(SolverError, match="conserve"):
        problem.validate_assignment(np.array([[5, 0], [0, 10]]))
    with pytest.raises(SolverError, match="shape"):
        problem.validate_assignment(np.zeros((3, 3)))


def test_forbidden_assignment_rejected():
    costs = np.array([[1.0, np.inf], [1.0, 1.0]])
    problem = FStealProblem(costs, np.array([4, 4]))
    bad = np.array([[2, 2], [2, 2]])
    with pytest.raises(SolverError, match="forbidden"):
        problem.validate_assignment(bad)


# ----------------------------------------------------------------------
# Solver behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_SOLVERS)
def test_solutions_feasible(name):
    solver = make_solver(name)
    for seed in range(4):
        problem = simple_problem(seed=seed, forbid=0.15)
        solution = solver.solve(problem)
        problem.validate_assignment(solution.assignment)
        assert solution.objective == pytest.approx(
            problem.objective(solution.assignment)
        )
        assert solution.solver == name


@pytest.mark.parametrize("name", ALL_SOLVERS)
def test_zero_workload(name):
    problem = FStealProblem(np.ones((3, 3)) * 1e-9,
                            np.zeros(3, dtype=np.int64))
    solution = make_solver(name).solve(problem)
    assert solution.objective == 0.0
    assert np.all(solution.assignment == 0)


@pytest.mark.parametrize("name", ALL_SOLVERS)
def test_stealing_beats_static_on_skewed_load(name):
    n = 4
    costs = np.full((n, n), 1.2e-9)
    np.fill_diagonal(costs, 1e-9)
    loads = np.array([80_000, 0, 0, 0])
    problem = FStealProblem(costs, loads)
    static = np.zeros((n, n), dtype=np.int64)
    static[0, 0] = 80_000
    solution = make_solver(name).solve(problem)
    assert solution.objective < 0.55 * problem.objective(static)


def test_heuristics_near_exact():
    exact = make_solver("lp")
    greedy = make_solver("greedy")
    worst = 1.0
    for seed in range(10):
        problem = simple_problem(n=8, seed=seed)
        ratio = (
            greedy.solve(problem).objective
            / max(exact.solve(problem).objective, 1e-30)
        )
        worst = max(worst, ratio)
    assert worst < 1.3


def test_bnb_matches_lp_bound():
    for seed in range(5):
        problem = simple_problem(n=6, seed=seed, forbid=0.1)
        lp = make_solver("lp").solve(problem).objective
        bnb = make_solver("bnb").solve(problem).objective
        assert bnb <= lp * (1.0 + 1e-9)


def test_highs_near_optimal_small_instance():
    costs = np.array([[1.0, 4.0], [4.0, 1.0]]) * 1e-9
    problem = FStealProblem(costs, np.array([100, 100]))
    solution = make_solver("highs").solve(problem)
    # optimum: everyone stays home -> 100 * 1e-9 per worker
    assert solution.objective == pytest.approx(1e-7, rel=1e-6)
    assert solution.assignment[0, 0] == 100
    assert solution.assignment[1, 1] == 100


def test_forbidden_columns_receive_nothing():
    costs = 1e-9 * np.ones((3, 3))
    costs[:, 2] = np.inf  # worker 2 evicted
    problem = FStealProblem(costs, np.array([900, 900, 900]))
    for name in ALL_SOLVERS:
        solution = make_solver(name).solve(problem)
        assert np.all(solution.assignment[:, 2] == 0)


def test_make_solver_unknown():
    with pytest.raises(SolverError, match="unknown solver"):
        make_solver("cplex")


def test_tiny_cost_scale_does_not_degenerate():
    # nanosecond-scale coefficients must survive HiGHS tolerances
    rng = np.random.default_rng(3)
    costs = 1e-9 * (0.5 + rng.random((6, 6)))
    loads = rng.integers(1000, 60_000, 6)
    problem = FStealProblem(costs, loads)
    lp = make_solver("lp").solve(problem).objective
    greedy = make_solver("greedy").solve(problem).objective
    # both balance: objectives within 2x of the per-worker average bound
    lower = (costs.min() * loads.sum()) / 6
    assert lower < lp < 3 * lower
    assert lower < greedy < 3 * lower


# ----------------------------------------------------------------------
# LP rounding: largest-remainder repair
# ----------------------------------------------------------------------
def test_round_lp_repays_large_over_assignment():
    """Rounding must repay the full over-assignment of a row.

    Regression test: the repair used to decrement at most one unit per
    donor in a single pass, so a row whose floor exceeded its workload
    by more than the number of donors stayed over-assigned and failed
    feasibility validation downstream.
    """
    from repro.core.milp import _round_lp

    costs = np.full((1, 2), 1e-9)
    problem = FStealProblem(costs, np.array([1]))
    # floor() keeps 2 + 2 = 4 units against a workload of 1: the repair
    # needs 3 decrements but only 2 donor columns exist per pass.
    fractional = np.array([[2.0, 2.0]])
    assignment = _round_lp(problem, fractional)
    assert assignment.sum() == 1
    assert np.all(assignment >= 0)
    problem.validate_assignment(assignment)


def test_round_lp_preserves_exact_rows():
    from repro.core.milp import _round_lp

    costs = np.full((2, 3), 1e-9)
    problem = FStealProblem(costs, np.array([6, 5]))
    fractional = np.array([[2.0, 2.0, 2.0], [1.6, 1.7, 1.7]])
    assignment = _round_lp(problem, fractional)
    assert np.array_equal(assignment.sum(axis=1), problem.workloads)
    problem.validate_assignment(assignment)
