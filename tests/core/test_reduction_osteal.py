"""Unit tests for the reduction tree and OSteal (Algorithm 2)."""

import numpy as np
import pytest

from repro import config
from repro.core import (
    OracleCostModel,
    ReductionTree,
    make_solver,
    plan_osteal,
)
from repro.errors import TopologyError
from repro.graph.features import FrontierFeatures
from repro.hardware import dgx1, fully_connected, measure_comm_cost_matrix


@pytest.fixture(scope="module")
def tree():
    return ReductionTree(dgx1(8))


def test_merge_sequence_complete(tree):
    merges = tree.merge_sequence
    assert len(merges) == 7
    victims = [v for v, __ in merges]
    assert len(set(victims)) == 7  # each GPU evicted at most once
    # thieves must still be alive when they steal
    alive = set(range(8))
    for victim, thief in merges:
        assert victim in alive and thief in alive
        alive.discard(victim)
    assert len(alive) == 1


def test_first_level_uses_wide_links(tree):
    lanes = dgx1(8).lane_matrix
    for victim, thief in tree.merge_sequence[:4]:
        assert lanes[victim, thief] == 2  # hybrid cube mesh doubled links


def test_ownership_chains(tree):
    for m in range(1, 9):
        ownership = tree.ownership(m)
        active = tree.active_workers(m)
        assert len(active) == m
        # every fragment is owned by an active worker
        assert set(np.unique(ownership)).issubset(set(active))
        # active workers own themselves
        for worker in active:
            assert ownership[worker] == worker


def test_full_group_is_identity(tree):
    assert np.array_equal(tree.ownership(8), np.arange(8))
    assert tree.active_workers(8) == list(range(8))


def test_single_group_owns_everything(tree):
    ownership = tree.ownership(1)
    assert np.unique(ownership).size == 1


def test_monotone_folding(tree):
    # shrinking the group never revives an evicted worker
    previous = set(tree.active_workers(8))
    for m in range(7, 0, -1):
        current = set(tree.active_workers(m))
        assert current.issubset(previous)
        previous = current


def test_group_size_bounds(tree):
    with pytest.raises(TopologyError):
        tree.ownership(0)
    with pytest.raises(TopologyError):
        tree.ownership(9)


def test_tree_on_other_topologies():
    ReductionTree(fully_connected(5)).ownership(2)
    single = ReductionTree(dgx1(1))
    assert single.merge_sequence == []
    assert single.active_workers(1) == [0]


# ----------------------------------------------------------------------
# OSteal (Algorithm 2)
# ----------------------------------------------------------------------
def balanced_setup(workload_per_fragment):
    topology = dgx1(8)
    tree = ReductionTree(topology)
    comm = measure_comm_cost_matrix(topology, config.BYTES_PER_EDGE, seed=0)
    features = [
        FrontierFeatures(4.0, 4.0, 2.0, 2.0, 0.2, 0.5, 50,
                         workload_per_fragment)
        for __ in range(8)
    ]
    workloads = np.full(8, workload_per_fragment, dtype=np.int64)
    home = np.arange(8, dtype=np.int64)
    return tree, comm, features, workloads, home


def test_osteal_folds_under_tiny_workload():
    tree, comm, features, workloads, home = balanced_setup(5)
    decision = plan_osteal(
        tree, comm, features, workloads, home, OracleCostModel(),
        make_solver("greedy"), p_estimate=1e-4,
    )
    assert decision.group_size == 1


def test_osteal_keeps_everyone_under_heavy_workload():
    tree, comm, features, workloads, home = balanced_setup(500_000)
    decision = plan_osteal(
        tree, comm, features, workloads, home, OracleCostModel(),
        make_solver("greedy"), p_estimate=1e-4,
    )
    assert decision.group_size == 8


def test_osteal_zero_sync_never_folds():
    tree, comm, features, workloads, home = balanced_setup(1000)
    decision = plan_osteal(
        tree, comm, features, workloads, home, OracleCostModel(),
        make_solver("greedy"), p_estimate=0.0,
    )
    assert decision.group_size == 8


def test_osteal_huge_sync_always_folds():
    tree, comm, features, workloads, home = balanced_setup(100_000)
    decision = plan_osteal(
        tree, comm, features, workloads, home, OracleCostModel(),
        make_solver("greedy"), p_estimate=10.0,
    )
    assert decision.group_size == 1


def test_osteal_decision_is_consistent():
    tree, comm, features, workloads, home = balanced_setup(2_000)
    decision = plan_osteal(
        tree, comm, features, workloads, home, OracleCostModel(),
        make_solver("greedy"), p_estimate=1e-4,
    )
    m = decision.group_size
    assert decision.active_workers == tree.active_workers(m)
    assert np.array_equal(decision.ownership, tree.ownership(m))
    assert decision.estimated_cost == pytest.approx(
        decision.estimated_kernel + 1e-4 * m
    )
    # the chosen policy's FSteal keeps work on active workers only
    inactive = sorted(set(range(8)) - set(decision.active_workers))
    assert np.all(decision.fsteal.assignment[:, inactive] == 0)


def test_osteal_candidate_restriction():
    tree, comm, features, workloads, home = balanced_setup(2_000)
    decision = plan_osteal(
        tree, comm, features, workloads, home, OracleCostModel(),
        make_solver("greedy"), p_estimate=1e-4,
        candidate_sizes=[4],
    )
    assert decision.group_size == 4
