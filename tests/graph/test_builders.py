"""Unit tests for graph builders and file I/O."""

import gzip

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    coalesce_duplicates,
    from_edge_arrays,
    from_edges,
    load_edge_list,
    load_matrix_market,
    remove_self_loops,
    save_edge_list,
    symmetrize,
)


def test_from_edges_weighted():
    graph = from_edges([(0, 1, 2.5), (1, 0, 1.5)])
    assert graph.is_weighted
    assert graph.weights.tolist() == [2.5, 1.5]


def test_from_edges_mixed_weights_rejected():
    with pytest.raises(GraphError, match="mix"):
        from_edges([(0, 1), (1, 0, 2.0)])


def test_from_edges_bad_arity():
    with pytest.raises(GraphError, match="2 or 3"):
        from_edges([(0, 1, 2.0, 3.0)])


def test_from_edge_arrays_sorting():
    graph = from_edge_arrays(
        np.array([2, 0, 1]), np.array([0, 1, 2])
    )
    src, dst = graph.edge_array()
    assert src.tolist() == [0, 1, 2]
    assert dst.tolist() == [1, 2, 0]


def test_from_edge_arrays_explicit_vertices():
    graph = from_edge_arrays(np.array([0]), np.array([1]), num_vertices=10)
    assert graph.num_vertices == 10
    with pytest.raises(GraphError, match="out of range"):
        from_edge_arrays(np.array([0]), np.array([5]), num_vertices=3)


def test_negative_ids_rejected():
    with pytest.raises(GraphError, match="non-negative"):
        from_edge_arrays(np.array([-1]), np.array([0]))


def test_remove_self_loops():
    graph = from_edges([(0, 0), (0, 1), (1, 1), (1, 0)])
    clean = remove_self_loops(graph)
    assert clean.num_edges == 2
    src, dst = clean.edge_array()
    assert np.all(src != dst)


def test_coalesce_unweighted():
    graph = from_edges([(0, 1), (0, 1), (1, 0)])
    merged = coalesce_duplicates(graph)
    assert merged.num_edges == 2


@pytest.mark.parametrize(
    "mode, expected", [("min", 1.0), ("max", 3.0), ("sum", 4.0)]
)
def test_coalesce_weight_modes(mode, expected):
    graph = from_edges([(0, 1, 1.0), (0, 1, 3.0)])
    merged = coalesce_duplicates(graph, reduce=mode)
    assert merged.num_edges == 1
    assert merged.weights[0] == expected


def test_coalesce_bad_mode():
    graph = from_edges([(0, 1)])
    with pytest.raises(GraphError, match="reduce"):
        coalesce_duplicates(graph, reduce="avg")


def test_symmetrize():
    graph = from_edges([(0, 1), (1, 2)])
    sym = symmetrize(graph)
    assert not sym.directed
    assert sym.num_edges == 4
    assert sorted(sym.neighbors(1).tolist()) == [0, 2]


def test_symmetrize_weights_min():
    graph = from_edges([(0, 1, 5.0), (1, 0, 2.0)])
    sym = symmetrize(graph, reduce="min")
    assert sym.num_edges == 2
    assert sym.weights.tolist() == [2.0, 2.0]


def test_symmetrize_idempotent_edge_count(skewed_graph):
    once = symmetrize(skewed_graph)
    twice = symmetrize(once)
    assert once.num_edges == twice.num_edges


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def test_edge_list_roundtrip(tmp_path, tiny_graph):
    path = tmp_path / "g.txt"
    save_edge_list(tiny_graph, path)
    loaded = load_edge_list(path)
    assert loaded.num_vertices == tiny_graph.num_vertices
    assert loaded.num_edges == tiny_graph.num_edges
    assert np.array_equal(loaded.indices, tiny_graph.indices)


def test_edge_list_weighted_roundtrip(tmp_path):
    graph = from_edges([(0, 1, 2.5), (1, 2, 0.5)])
    path = tmp_path / "w.txt"
    save_edge_list(graph, path)
    loaded = load_edge_list(path)
    assert loaded.is_weighted
    assert loaded.weights.tolist() == [2.5, 0.5]


def test_edge_list_gzip(tmp_path):
    path = tmp_path / "g.txt.gz"
    with gzip.open(path, "wt") as handle:
        handle.write("# comment\n0 1\n1 2\n")
    loaded = load_edge_list(path)
    assert loaded.num_edges == 2


def test_edge_list_comments_and_errors(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("% skipped\n0 1\n0 1 2 3\n")
    with pytest.raises(GraphError, match="fields"):
        load_edge_list(path)
    path.write_text("0 1\n1 2 5.0\n")
    with pytest.raises(GraphError, match="mixed"):
        load_edge_list(path)


def test_matrix_market_pattern(tmp_path):
    path = tmp_path / "m.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment\n"
        "3 3 2\n"
        "1 2\n"
        "3 1\n"
    )
    graph = load_matrix_market(path)
    assert graph.num_vertices == 3
    assert graph.num_edges == 2
    assert graph.neighbors(0).tolist() == [1]  # 1-based -> 0-based


def test_matrix_market_symmetric_real(tmp_path):
    path = tmp_path / "s.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 2 1\n"
        "1 2 4.5\n"
    )
    graph = load_matrix_market(path)
    assert graph.num_edges == 2  # both directions
    assert not graph.directed
    assert graph.weights.tolist() == [4.5, 4.5]


def test_matrix_market_rejects_bad_header(tmp_path):
    path = tmp_path / "x.mtx"
    path.write_text("not a matrix\n1 1 0\n")
    with pytest.raises(GraphError, match="header"):
        load_matrix_market(path)


def test_matrix_market_rejects_dense(tmp_path):
    path = tmp_path / "d.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
    with pytest.raises(GraphError, match="coordinate"):
        load_matrix_market(path)
