"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, from_edges


def test_basic_counts(tiny_graph):
    assert tiny_graph.num_vertices == 6
    assert tiny_graph.num_edges == 7
    assert tiny_graph.directed
    assert not tiny_graph.is_weighted


def test_degrees(tiny_graph):
    assert tiny_graph.out_degree(0) == 2
    assert tiny_graph.out_degree(3) == 1
    out = tiny_graph.out_degrees()
    assert out.tolist() == [2, 1, 1, 1, 1, 1]
    sub = tiny_graph.out_degrees(np.array([0, 3]))
    assert sub.tolist() == [2, 1]
    in_deg = tiny_graph.in_degrees()
    assert in_deg.tolist() == [1, 1, 1, 2, 1, 1]
    assert int(in_deg.sum()) == tiny_graph.num_edges


def test_neighbors(tiny_graph):
    assert tiny_graph.neighbors(0).tolist() == [1, 2]
    assert tiny_graph.neighbors(5).tolist() == [0]
    assert sorted(tiny_graph.in_neighbors(3).tolist()) == [1, 2]
    assert tiny_graph.in_neighbors(0).tolist() == [5]


def test_iter_edges(tiny_graph):
    edges = list(tiny_graph.iter_edges())
    assert (0, 1, 1.0) in edges
    assert (5, 0, 1.0) in edges
    assert len(edges) == 7


def test_edge_array(tiny_graph):
    src, dst = tiny_graph.edge_array()
    assert src.tolist() == [0, 0, 1, 2, 3, 4, 5]
    assert dst.tolist() == [1, 2, 3, 3, 4, 5, 0]


def test_reversed(tiny_graph):
    rev = tiny_graph.reversed()
    assert rev.num_edges == tiny_graph.num_edges
    assert sorted(rev.neighbors(3).tolist()) == [1, 2]
    assert rev.neighbors(0).tolist() == [5]


def test_reversed_preserves_weights():
    graph = from_edges([(0, 1, 2.0), (1, 2, 3.0), (2, 0, 5.0)])
    rev = graph.reversed()
    # edge 0->1 w=2 becomes 1->0 w=2
    idx = rev.neighbors(1).tolist().index(0)
    assert rev.edge_weights_of(1)[idx] == 2.0


def test_edge_weights_default_ones(tiny_graph):
    assert tiny_graph.edge_weights_of(0).tolist() == [1.0, 1.0]


def test_with_unit_weights(tiny_graph):
    weighted = tiny_graph.with_unit_weights()
    assert weighted.is_weighted
    assert weighted.weights.tolist() == [1.0] * 7


def test_with_name(tiny_graph):
    renamed = tiny_graph.with_name("other")
    assert renamed.name == "other"
    assert renamed.num_edges == tiny_graph.num_edges
    assert tiny_graph.name == "tiny"


def test_arrays_readonly(tiny_graph):
    with pytest.raises(ValueError):
        tiny_graph.indptr[0] = 5
    with pytest.raises(ValueError):
        tiny_graph.indices[0] = 5


def test_empty_graph():
    graph = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
    assert graph.num_vertices == 0
    assert graph.num_edges == 0


def test_isolated_vertices():
    graph = from_edges([(0, 1)], num_vertices=5)
    assert graph.num_vertices == 5
    assert graph.out_degree(4) == 0
    assert graph.neighbors(4).size == 0


@pytest.mark.parametrize(
    "indptr, indices, message",
    [
        ([1, 2], [0], "indptr"),  # indptr[0] != 0
        ([0, 2], [0], "indptr"),  # indptr[-1] != len(indices)
        ([0, 2, 1, 2], [0, 1], "non-decreasing"),
        ([0, 1], [3], "out of range"),
    ],
)
def test_invalid_csr(indptr, indices, message):
    with pytest.raises(GraphError, match=message):
        CSRGraph(
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
        )


def test_weights_must_be_parallel():
    with pytest.raises(GraphError, match="parallel"):
        CSRGraph(
            np.array([0, 1]),
            np.array([0]),
            weights=np.array([1.0, 2.0]),
        )


def test_repr(tiny_graph):
    text = repr(tiny_graph)
    assert "tiny" in text
    assert "|V|=6" in text
