"""Unit tests for the Table-II dataset registry."""

import pytest

from repro.errors import GraphError
from repro.graph import datasets
from repro.graph.properties import degree_summary, pseudo_diameter


def test_registry_has_all_fifteen():
    assert len(datasets.DATASETS) == 15
    assert datasets.dataset_names() == list(datasets.DATASETS)


def test_domains():
    assert datasets.dataset_names("SN") == ["LJ", "OR", "SW", "TW", "CF"]
    assert datasets.dataset_names("WG") == ["U2", "AR", "IT", "U5", "WB"]
    assert datasets.dataset_names("RN") == ["TX", "CA", "GM", "USA", "EU"]


def test_load_caches():
    a = datasets.load("TX")
    b = datasets.load("TX")
    assert a is b


def test_load_unknown():
    with pytest.raises(GraphError, match="unknown dataset"):
        datasets.load("NOPE")


def test_load_many():
    graphs = datasets.load_many(["TX", "LJ"])
    assert set(graphs) == {"TX", "LJ"}
    assert graphs["TX"].name == "TX"


def test_social_graphs_are_skewed():
    graph = datasets.load("LJ")
    assert degree_summary(graph).gini > 0.5
    assert pseudo_diameter(graph) <= 12


def test_road_graphs_are_long_and_sparse():
    graph = datasets.load("TX")
    assert degree_summary(graph).avg_out_degree < 4.5
    assert pseudo_diameter(graph) > 100
    assert not graph.directed


def test_relative_size_ordering_within_domains():
    sizes = {a: datasets.load(a).num_edges for a in ("TX", "CA", "USA", "EU")}
    assert sizes["TX"] < sizes["CA"] < sizes["USA"] < sizes["EU"]
    assert datasets.load("LJ").num_edges < datasets.load("CF").num_edges


def test_spec_build_matches_load():
    spec = datasets.DATASETS["CA"]
    built = spec.build()
    assert built.num_edges == datasets.load("CA").num_edges
    assert built.name == "CA"
