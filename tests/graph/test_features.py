"""Unit tests for Table-I frontier features."""

import numpy as np
import pytest

from repro.graph.features import (
    FEATURE_NAMES,
    FrontierFeatures,
    frontier_features,
)


def test_empty_frontier(tiny_graph):
    feats = frontier_features(tiny_graph, np.array([], dtype=np.int64))
    assert feats == FrontierFeatures.empty()
    assert feats.total_edges == 0
    assert np.array_equal(feats.vector(), np.zeros(6))


def test_tiny_frontier_values(tiny_graph):
    feats = frontier_features(tiny_graph, np.array([0, 3]))
    # out-degrees: 2 and 1; in-degrees: 1 and 2
    assert feats.avg_out_degree == pytest.approx(1.5)
    assert feats.avg_in_degree == pytest.approx(1.5)
    assert feats.out_degree_range == 1
    assert feats.in_degree_range == 1
    assert feats.size == 2
    assert feats.total_edges == 3


def test_vector_order(tiny_graph):
    feats = frontier_features(tiny_graph, np.array([0]))
    vector = feats.vector()
    assert vector.shape == (len(FEATURE_NAMES),)
    assert vector[0] == feats.avg_in_degree
    assert vector[1] == feats.avg_out_degree
    assert vector[4] == feats.gini
    assert vector[5] == feats.entropy


def test_single_vertex_has_zero_ranges(skewed_graph):
    feats = frontier_features(skewed_graph, np.array([3]))
    assert feats.out_degree_range == 0
    assert feats.in_degree_range == 0
    assert feats.gini == pytest.approx(0.0, abs=1e-12)


def test_full_frontier_matches_graph_totals(skewed_graph):
    everyone = np.arange(skewed_graph.num_vertices, dtype=np.int64)
    feats = frontier_features(skewed_graph, everyone)
    assert feats.total_edges == skewed_graph.num_edges
    assert feats.avg_out_degree == pytest.approx(
        skewed_graph.num_edges / skewed_graph.num_vertices
    )


def test_features_bounded(skewed_graph):
    rng = np.random.default_rng(0)
    for __ in range(5):
        frontier = np.unique(
            rng.integers(0, skewed_graph.num_vertices, size=100)
        )
        feats = frontier_features(skewed_graph, frontier)
        assert 0.0 <= feats.gini <= 1.0
        assert 0.0 <= feats.entropy <= 1.0 + 1e-9
        assert feats.total_edges >= 0
