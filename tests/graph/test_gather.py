"""Unit tests for vectorized adjacency expansion."""

import numpy as np

from repro.graph import rmat, with_random_weights
from repro.graph.gather import (
    expand_indices,
    gather_edge_positions,
    gather_edges,
)


def test_expand_indices_simple():
    out = expand_indices(np.array([0, 10]), np.array([3, 2]))
    assert out.tolist() == [0, 1, 2, 10, 11]


def test_expand_indices_with_empty_ranges():
    out = expand_indices(np.array([5, 0, 9]), np.array([2, 0, 1]))
    assert out.tolist() == [5, 6, 9]


def test_expand_indices_all_empty():
    out = expand_indices(np.array([1, 2]), np.array([0, 0]))
    assert out.size == 0


def test_gather_edges_tiny(tiny_graph):
    src, dst, weights = gather_edges(tiny_graph, np.array([0, 3]))
    assert src.tolist() == [0, 0, 3]
    assert dst.tolist() == [1, 2, 4]
    assert weights is None


def test_gather_edges_empty(tiny_graph):
    src, dst, weights = gather_edges(tiny_graph, np.array([], dtype=np.int64))
    assert src.size == 0 and dst.size == 0 and weights is None


def test_gather_edges_weighted():
    graph = with_random_weights(rmat(8, 6, seed=1), seed=2)
    frontier = np.array([0, 5, 17], dtype=np.int64)
    src, dst, weights = gather_edges(graph, frontier)
    assert weights is not None
    assert weights.shape == dst.shape
    # weights must line up with the CSR order of each vertex
    offset = 0
    for vertex in frontier:
        deg = graph.out_degree(int(vertex))
        expected = graph.edge_weights_of(int(vertex))
        assert np.array_equal(weights[offset: offset + deg], expected)
        offset += deg


def test_gather_matches_naive_on_random_frontiers(skewed_graph):
    rng = np.random.default_rng(7)
    for __ in range(10):
        frontier = np.unique(
            rng.integers(0, skewed_graph.num_vertices, size=60)
        )
        __, dst, __w = gather_edges(skewed_graph, frontier)
        naive = (
            np.concatenate(
                [skewed_graph.neighbors(int(v)) for v in frontier]
            )
            if frontier.size
            else np.empty(0)
        )
        assert np.array_equal(dst, naive)


def test_gather_edge_positions_consistency(skewed_graph):
    frontier = np.array([1, 2, 3], dtype=np.int64)
    sources, positions = gather_edge_positions(skewed_graph, frontier)
    assert np.array_equal(
        skewed_graph.indices[positions],
        gather_edges(skewed_graph, frontier)[1],
    )
    degrees = skewed_graph.out_degrees(frontier)
    assert np.array_equal(sources, np.repeat(frontier, degrees))
