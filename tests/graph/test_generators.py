"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    is_connected,
    path_graph,
    rmat,
    road_network,
    small_world,
    star,
    web_graph,
    with_random_weights,
)
from repro.graph.properties import (
    degree_summary,
    largest_component_fraction,
    pseudo_diameter,
)


def test_rmat_shape_and_determinism():
    a = rmat(9, 8, seed=1)
    b = rmat(9, 8, seed=1)
    assert a.num_vertices == 512
    assert a.num_edges == b.num_edges
    assert np.array_equal(a.indices, b.indices)
    c = rmat(9, 8, seed=2)
    assert not np.array_equal(a.indices, c.indices)


def test_rmat_is_skewed():
    graph = rmat(11, 12, seed=0)
    summary = degree_summary(graph)
    assert summary.gini > 0.5
    assert summary.max_out_degree > 20 * summary.avg_out_degree


def test_rmat_no_self_loops_or_duplicates():
    graph = rmat(8, 8, seed=3)
    src, dst = graph.edge_array()
    assert np.all(src != dst)
    keys = src * graph.num_vertices + dst
    assert np.unique(keys).size == keys.size


def test_rmat_param_validation():
    with pytest.raises(GraphError):
        rmat(0)
    with pytest.raises(GraphError):
        rmat(8, a=0.9, b=0.1, c=0.1)


@pytest.mark.parametrize("edge_batch", [1, 7, 1000, 2048, 10**9])
def test_rmat_chunked_is_seed_identical(edge_batch):
    # chunked generation replays slices of the one-shot RNG stream,
    # so any batch size — including ones that don't divide |E| and
    # ones larger than |E| — must reproduce the graph bit-for-bit
    one_shot = rmat(8, 8, seed=11)
    chunked = rmat(8, 8, seed=11, edge_batch=edge_batch)
    assert chunked.num_edges == one_shot.num_edges
    assert np.array_equal(chunked.indptr, one_shot.indptr)
    assert np.array_equal(chunked.indices, one_shot.indices)


def test_rmat_chunked_larger_graph_seed_identical():
    one_shot = rmat(11, 16, seed=5)
    chunked = rmat(11, 16, seed=5, edge_batch=4096)
    assert np.array_equal(chunked.indptr, one_shot.indptr)
    assert np.array_equal(chunked.indices, one_shot.indices)


def test_rmat_chunked_validation():
    with pytest.raises(GraphError, match="edge_batch"):
        rmat(8, edge_batch=0)
    with pytest.raises(GraphError, match="seed"):
        rmat(8, seed=None, edge_batch=64)


def test_erdos_renyi_exact_edges():
    graph = erdos_renyi(100, 500, seed=0)
    assert graph.num_vertices == 100
    assert graph.num_edges == 500
    src, dst = graph.edge_array()
    assert np.all(src != dst)


def test_erdos_renyi_too_many_edges():
    with pytest.raises(GraphError, match="too many"):
        erdos_renyi(3, 100)


def test_grid_2d():
    graph = grid_2d(4, 5)
    assert graph.num_vertices == 20
    # 2 * (horizontal + vertical) lattice edges
    assert graph.num_edges == 2 * (4 * 4 + 3 * 5)
    assert is_connected(graph)


def test_road_network_regime():
    graph = road_network(6, 120, seed=0)
    summary = degree_summary(graph)
    assert summary.avg_out_degree < 4.5
    assert pseudo_diameter(graph) > 60
    assert largest_component_fraction(graph) > 0.95


def test_road_network_permutation_optional():
    raw = road_network(5, 30, seed=1, permute_ids=False)
    permuted = road_network(5, 30, seed=1, permute_ids=True)
    assert raw.num_edges == permuted.num_edges
    assert not np.array_equal(raw.indices, permuted.indices)


def test_road_network_too_small():
    with pytest.raises(GraphError):
        road_network(1, 5)


def test_web_graph_regime():
    graph = web_graph(3000, 10, seed=0)
    assert graph.num_vertices == 3000
    summary = degree_summary(graph)
    assert summary.gini > 0.2  # out-degrees are Pareto-tailed
    src, dst = graph.edge_array()
    assert np.all(src != dst)


def test_web_graph_locality_bounds():
    with pytest.raises(GraphError):
        web_graph(100, 5, locality=1.5)
    with pytest.raises(GraphError):
        web_graph(1, 5)


def test_small_world():
    graph = small_world(200, k=3, seed=0)
    assert graph.num_vertices == 200
    assert not graph.directed
    with pytest.raises(GraphError):
        small_world(2, k=1)
    with pytest.raises(GraphError):
        small_world(10, k=9)


def test_star():
    graph = star(10)
    assert graph.num_vertices == 11
    assert graph.out_degree(0) == 10
    assert graph.out_degree(5) == 1


def test_path_graph():
    graph = path_graph(5)
    assert graph.num_edges == 8  # 4 undirected edges stored both ways
    assert pseudo_diameter(graph) == 4
    single = path_graph(1)
    assert single.num_vertices == 1
    assert single.num_edges == 0


def test_complete_graph():
    graph = complete_graph(5)
    assert graph.num_edges == 20
    assert all(graph.out_degree(v) == 4 for v in range(5))


def test_with_random_weights():
    base = path_graph(20)
    weighted = with_random_weights(base, low=1, high=4, seed=0)
    assert weighted.is_weighted
    assert weighted.weights.min() >= 1
    assert weighted.weights.max() <= 4
    assert np.all(weighted.weights == np.rint(weighted.weights))
    real = with_random_weights(base, low=0.5, high=2.0, integer=False,
                               seed=0)
    assert real.weights.min() >= 0.5
    with pytest.raises(GraphError, match="empty"):
        with_random_weights(base, low=5, high=1)


def test_weights_preserve_structure():
    base = rmat(8, 6, seed=2)
    weighted = with_random_weights(base, seed=0)
    assert np.array_equal(weighted.indices, base.indices)
    assert np.array_equal(weighted.indptr, base.indptr)
