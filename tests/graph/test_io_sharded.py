"""Out-of-core graph storage: mmap loads and the sharded format.

Pins the two layers of PR-9's storage work: ``load_graph(mmap_mode=)``
maps uncompressed archives without copies, and the sharded directory
format round-trips through :class:`ShardedCSRGraph` bit-identically —
including every access pattern the engines use (sorted fancy
indexing, slices, scalars, degree scans) — while the LRU shard cache
honors its resident-byte budget.
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    load_graph,
    open_graph_sharded,
    rmat,
    save_graph,
    save_graph_sharded,
    symmetrize,
    with_random_weights,
)
from repro.graph.gather import gather_edge_positions
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def graph():
    return with_random_weights(rmat(12, 8, seed=7), seed=3)


# ----------------------------------------------------------------------
# load_graph(mmap_mode=...)
# ----------------------------------------------------------------------
class TestMmapLoad:
    def test_uncompressed_round_trip(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.npz", compress=False)
        loaded = load_graph(tmp_path / "g.npz", mmap_mode="r")
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)
        assert np.array_equal(loaded.weights, graph.weights)

    def test_mmap_is_zero_copy(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.npz", compress=False)
        loaded = load_graph(tmp_path / "g.npz", mmap_mode="r")
        # the CSR arrays must still be views over the file mapping,
        # not RAM copies — that is the whole point of mmap_mode
        for array in (loaded.indptr, loaded.indices, loaded.weights):
            assert isinstance(array.base, np.memmap)

    def test_compressed_archive_rejected_for_mmap(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.npz", compress=True)
        with pytest.raises(GraphError, match="compress=False"):
            load_graph(tmp_path / "g.npz", mmap_mode="r")

    def test_compressed_default_still_loads(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.npz")
        loaded = load_graph(tmp_path / "g.npz")
        assert np.array_equal(loaded.indices, graph.indices)

    def test_unknown_mmap_mode_rejected(self, graph, tmp_path):
        save_graph(graph, tmp_path / "g.npz", compress=False)
        with pytest.raises(GraphError, match="mmap_mode"):
            load_graph(tmp_path / "g.npz", mmap_mode="r+")


# ----------------------------------------------------------------------
# sharded round trip
# ----------------------------------------------------------------------
@pytest.fixture()
def sharded(graph, tmp_path):
    save_graph_sharded(graph, tmp_path / "g.shards", num_shards=6)
    return open_graph_sharded(tmp_path / "g.shards",
                              resident_bytes=4 << 20)


class TestShardedRoundTrip:
    def test_structure(self, graph, sharded):
        assert sharded.num_vertices == graph.num_vertices
        assert sharded.num_edges == graph.num_edges
        assert sharded.num_shards == 6
        assert sharded.is_weighted and sharded.directed
        assert np.array_equal(sharded.indptr, graph.indptr)

    def test_full_materialization(self, graph, sharded):
        assert np.array_equal(np.asarray(sharded.indices), graph.indices)
        assert np.array_equal(np.asarray(sharded.weights), graph.weights)

    def test_degrees(self, graph, sharded):
        assert np.array_equal(sharded.out_degrees(), graph.out_degrees())
        assert np.array_equal(sharded.in_degrees(), graph.in_degrees())
        hub = int(np.argmax(graph.out_degrees()))
        assert sharded.out_degree(hub) == graph.out_degree(hub)
        assert np.array_equal(sharded.neighbors(hub), graph.neighbors(hub))
        assert np.array_equal(
            sharded.edge_weights_of(hub), graph.edge_weights_of(hub)
        )

    def test_gather_positions_bit_identical(self, graph, sharded):
        rng = np.random.default_rng(0)
        frontier = np.unique(rng.integers(0, graph.num_vertices, 800))
        __, positions = gather_edge_positions(graph, frontier)
        __, sharded_positions = gather_edge_positions(sharded, frontier)
        assert np.array_equal(positions, sharded_positions)
        assert np.array_equal(
            sharded.indices[sharded_positions], graph.indices[positions]
        )
        assert np.array_equal(
            sharded.weights[sharded_positions], graph.weights[positions]
        )

    def test_unsorted_and_scalar_indexing(self, graph, sharded):
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(
            rng.integers(0, graph.num_edges, 1000)
        )
        assert np.array_equal(
            sharded.indices[shuffled], graph.indices[shuffled]
        )
        assert sharded.indices[17] == graph.indices[17]
        assert sharded.indices[-1] == graph.indices[-1]
        assert np.array_equal(
            sharded.indices[100:5000], graph.indices[100:5000]
        )
        assert sharded.indices[10:10].size == 0

    def test_edge_reductions(self, graph, sharded):
        assert sharded.weights.min() == graph.weights.min()
        assert sharded.weights.max() == graph.weights.max()
        assert sharded.weights.mean() == graph.weights.mean()

    def test_hub_adjacency_never_split(self, graph, sharded):
        # a vertex's out-edges live in exactly one shard
        boundaries = sharded.edge_starts
        assert np.array_equal(
            boundaries, graph.indptr[sharded.vertex_starts]
        )

    def test_unweighted_graph(self, tmp_path):
        g = symmetrize(rmat(10, 6, seed=1))
        save_graph_sharded(g, tmp_path / "u.shards", num_shards=4)
        s = open_graph_sharded(tmp_path / "u.shards")
        assert s.weights is None and not s.is_weighted
        assert not s.directed
        assert np.array_equal(np.asarray(s.indices), g.indices)

    def test_not_a_shard_dir(self, tmp_path):
        with pytest.raises(GraphError, match="sharded graph"):
            open_graph_sharded(tmp_path)


# ----------------------------------------------------------------------
# the budgeted LRU cache
# ----------------------------------------------------------------------
class TestShardCache:
    def test_budget_forces_evictions_and_peak_honored(
        self, graph, tmp_path
    ):
        save_graph_sharded(graph, tmp_path / "g.shards", num_shards=8)
        budget = 200_000
        sharded = open_graph_sharded(
            tmp_path / "g.shards", resident_bytes=budget
        )
        assert np.array_equal(np.asarray(sharded.indices), graph.indices)
        assert np.array_equal(np.asarray(sharded.weights), graph.weights)
        stats = sharded.cache_stats()
        assert stats["evictions"] > 0
        assert stats["peak_resident_bytes"] <= budget
        assert stats["resident_bytes"] <= budget

    def test_hits_and_lru_order(self, sharded):
        sharded.indices[0:10]
        before = sharded.cache_stats()["loads"]
        sharded.indices[0:10]
        stats = sharded.cache_stats()
        assert stats["loads"] == before
        assert stats["hits"] > 0

    def test_drop_cache(self, sharded):
        sharded.indices[0:10]
        assert sharded.cache_stats()["resident_bytes"] > 0
        sharded.drop_cache()
        assert sharded.cache_stats()["resident_bytes"] == 0

    def test_metrics_surface(self, graph, tmp_path):
        save_graph_sharded(graph, tmp_path / "g.shards", num_shards=4)
        registry = MetricsRegistry()
        sharded = open_graph_sharded(
            tmp_path / "g.shards",
            resident_bytes=150_000,
            metrics=registry,
        )
        np.asarray(sharded.indices)  # full pass: loads + evictions
        sharded.indices[0:10]
        sharded.indices[0:10]  # same shard again: a cache hit
        snapshot = registry.snapshot()
        assert snapshot["shard_cache.loads"]["total"] > 0
        assert snapshot["shard_cache.hits"]["total"] > 0
        assert snapshot["shard_cache.evictions"]["total"] > 0
        stats = sharded.cache_stats()
        assert (
            snapshot["shard_cache.peak_resident_bytes"]["value"]
            == stats["peak_resident_bytes"]
        )

    def test_invalid_budget_rejected(self, graph, tmp_path):
        save_graph_sharded(graph, tmp_path / "g.shards", num_shards=2)
        with pytest.raises(GraphError, match="resident_bytes"):
            open_graph_sharded(tmp_path / "g.shards", resident_bytes=0)
