"""Array-layout invariants every construction path must satisfy.

The shared-memory execution backend maps ``indptr``/``indices``/
``weights`` into raw buffers, so a graph whose arrays are
non-contiguous, non-``int64``, or the product of a silent lossy cast
would corrupt every worker's view. These tests pin the guarantee that
:class:`CSRGraph` normalizes layout at construction — over every
builder, loader, generator, and derived-graph path — and that lossy
numeric casts are rejected instead of truncated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import builders, generators, io_npz
from repro.graph.csr import CSRGraph


def _assert_layout(graph: CSRGraph) -> None:
    assert graph.indptr.dtype == np.int64
    assert graph.indices.dtype == np.int64
    assert graph.indptr.flags.c_contiguous
    assert graph.indices.flags.c_contiguous
    assert not graph.indptr.flags.writeable
    assert not graph.indices.flags.writeable
    if graph.weights is not None:
        assert graph.weights.dtype == np.float64
        assert graph.weights.flags.c_contiguous
        assert not graph.weights.flags.writeable


def _edges():
    src = np.array([0, 0, 1, 2, 3], dtype=np.int64)
    dst = np.array([1, 2, 2, 3, 0], dtype=np.int64)
    wts = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    return src, dst, wts


# ----------------------------------------------------------------------
# Every builder / loader / generator path yields the canonical layout
# ----------------------------------------------------------------------
def test_direct_construction_normalizes_dtype_and_stride():
    # int32 inputs and strided views are legal — they are normalized
    indptr = np.array([0, 1, 2], dtype=np.int32)
    indices = np.array([1, 5, 0, 5], dtype=np.int16)[::2]  # strided view
    graph = CSRGraph(indptr, indices)
    _assert_layout(graph)
    assert graph.num_edges == 2
    assert graph.indices.tolist() == [1, 0]


def test_from_edge_arrays_layout():
    src, dst, wts = _edges()
    graph = builders.from_edge_arrays(
        src.astype(np.int32), dst.astype(np.uint32), weights=wts
    )
    _assert_layout(graph)


def test_from_edges_layout():
    graph = builders.from_edges([(0, 1, 1.5), (1, 2, 2.5), (2, 0, 0.5)])
    _assert_layout(graph)


def test_symmetrize_and_coalesce_and_self_loop_layout():
    src, dst, wts = _edges()
    graph = builders.from_edge_arrays(src, dst, weights=wts)
    for derived in (
        builders.symmetrize(graph),
        builders.coalesce_duplicates(graph),
        builders.remove_self_loops(graph),
    ):
        _assert_layout(derived)


def test_load_edge_list_layout(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("0 1 2.0\n1 2 3.0\n2 0 4.0\n")
    _assert_layout(builders.load_edge_list(path))


def test_load_matrix_market_layout(tmp_path):
    path = tmp_path / "g.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n1 2 1.0\n2 3 2.0\n3 1 3.0\n"
    )
    _assert_layout(builders.load_matrix_market(path))


def test_npz_roundtrip_layout(tmp_path):
    src, dst, wts = _edges()
    graph = builders.from_edge_arrays(src, dst, weights=wts)
    path = tmp_path / "g.npz"
    io_npz.save_graph(graph, path)
    loaded = io_npz.load_graph(path)
    _assert_layout(loaded)
    assert np.array_equal(loaded.indptr, graph.indptr)
    assert np.array_equal(loaded.indices, graph.indices)
    assert np.array_equal(loaded.weights, graph.weights)


def test_generator_and_derived_layouts():
    graph = generators.rmat(6, 4, seed=3)
    _assert_layout(graph)
    _assert_layout(graph.reversed())
    _assert_layout(graph.with_unit_weights())
    _assert_layout(generators.with_random_weights(graph, seed=1))


# ----------------------------------------------------------------------
# Lossy numeric casts are rejected, not truncated
# ----------------------------------------------------------------------
def test_fractional_indptr_rejected():
    with pytest.raises(GraphError, match="losslessly"):
        CSRGraph(np.array([0.0, 1.5, 2.0]), np.array([0, 1]))


def test_fractional_indices_rejected():
    with pytest.raises(GraphError, match="losslessly"):
        CSRGraph(np.array([0, 2]), np.array([0.25, 0.75]))


def test_fractional_edge_arrays_rejected():
    with pytest.raises(GraphError, match="losslessly"):
        builders.from_edge_arrays(np.array([0.5, 1.0]), np.array([1, 0]))
    with pytest.raises(GraphError, match="losslessly"):
        builders.from_edge_arrays(np.array([0, 1]), np.array([1.0, 0.5]))


def test_exact_float_indices_accepted():
    # exact integral floats carry no information loss — allowed
    graph = CSRGraph(np.array([0.0, 1.0, 2.0]), np.array([1.0, 0.0]))
    _assert_layout(graph)
    assert graph.indices.tolist() == [1, 0]


# ----------------------------------------------------------------------
# reversed() weights are aligned with the cached CSC permutation
# ----------------------------------------------------------------------
def test_reversed_weights_match_in_neighbor_order():
    rng = np.random.default_rng(7)
    graph = generators.with_random_weights(
        generators.rmat(7, 6, seed=11), seed=5
    )
    rev = graph.reversed()
    # the multiset of (src, dst, weight) triples must be flipped exactly
    forward = {}
    for u, v, w in graph.iter_edges():
        forward.setdefault((v, u), []).append(w)
    for v, u, w in rev.iter_edges():
        assert w in forward[(v, u)], (v, u, w)
        forward[(v, u)].remove(w)
    assert all(not ws for ws in forward.values())
    # per-vertex: rev's neighbor list of v is exactly in_neighbors(v),
    # and the parallel weights follow the same stable CSC order (each
    # source's parallel edges keep their CSR-relative order)
    per_pair = {}
    for u, v, w in graph.iter_edges():
        per_pair.setdefault((u, v), []).append(w)
    for v in rng.choice(graph.num_vertices, size=16, replace=False):
        v = int(v)
        assert np.array_equal(rev.neighbors(v), graph.in_neighbors(v))
        expected, taken = [], {}
        for u in graph.in_neighbors(v).tolist():
            k = taken.get((u, v), 0)
            taken[(u, v)] = k + 1
            expected.append(per_pair[(u, v)][k])
        assert np.array_equal(rev.edge_weights_of(v), expected)


def test_csc_order_cached_and_shared():
    graph = generators.with_random_weights(
        generators.rmat(5, 4, seed=2), seed=3
    )
    graph.reverse_adjacency()
    cached = graph._csc_order_cache
    assert cached is not None
    graph.reversed()
    assert graph._csc_order_cache is cached  # no recompute
    copy = graph.with_name("alias")
    assert copy._csc_order_cache is cached
