"""Unit tests for structural graph properties."""

import numpy as np
import pytest

from repro.graph import (
    bfs_levels,
    degree_entropy,
    degree_summary,
    from_edges,
    gini_coefficient,
    is_connected,
    largest_component_fraction,
    path_graph,
    pseudo_diameter,
    star,
)
from repro.algorithms.validate import reference_bfs


def test_gini_uniform_is_zero():
    assert gini_coefficient(np.full(50, 7.0)) == pytest.approx(0.0, abs=1e-9)


def test_gini_concentrated_is_high():
    values = np.zeros(100)
    values[0] = 100.0
    assert gini_coefficient(values) > 0.95


def test_gini_bounds_and_edge_cases():
    assert gini_coefficient(np.array([])) == 0.0
    assert gini_coefficient(np.zeros(10)) == 0.0
    with pytest.raises(ValueError):
        gini_coefficient(np.array([-1.0, 2.0]))


def test_gini_scale_invariant():
    values = np.array([1.0, 2.0, 3.0, 10.0])
    assert gini_coefficient(values) == pytest.approx(
        gini_coefficient(values * 13.0)
    )


def test_entropy_uniform_is_max():
    uniform = degree_entropy(np.full(64, 4.0))
    assert uniform == pytest.approx(1.0, abs=1e-9)


def test_entropy_concentrated_is_low():
    values = np.zeros(64)
    values[0] = 100.0
    assert degree_entropy(values) == pytest.approx(0.0, abs=1e-9)


def test_entropy_edge_cases():
    assert degree_entropy(np.array([5.0])) == 0.0
    assert degree_entropy(np.zeros(10)) == 0.0


def test_degree_summary(tiny_graph):
    summary = degree_summary(tiny_graph)
    assert summary.avg_out_degree == pytest.approx(7 / 6)
    assert summary.avg_in_degree == pytest.approx(7 / 6)
    assert summary.max_out_degree == 2
    assert summary.out_degree_range == 1
    assert 0 <= summary.gini <= 1
    assert 0 <= summary.entropy <= 1
    assert set(summary.as_dict()) == {
        "avg_in_degree", "avg_out_degree", "in_degree_range",
        "out_degree_range", "max_out_degree", "gini", "entropy",
    }


def test_bfs_levels_tiny(tiny_graph):
    levels = bfs_levels(tiny_graph, 0)
    assert levels.tolist() == [0, 1, 1, 2, 3, 4]


def test_bfs_levels_unreachable():
    graph = from_edges([(0, 1)], num_vertices=3)
    levels = bfs_levels(graph, 0)
    assert levels.tolist() == [0, 1, -1]


def test_bfs_levels_matches_reference(skewed_graph, source):
    ours = bfs_levels(skewed_graph, source)
    ref = reference_bfs(skewed_graph, source)
    reachable = ours >= 0
    assert np.array_equal(np.isfinite(ref), reachable)
    assert np.allclose(ours[reachable], ref[reachable])


def test_pseudo_diameter_path():
    assert pseudo_diameter(path_graph(30)) == 29


def test_pseudo_diameter_star():
    assert pseudo_diameter(star(20)) == 2


def test_connectivity():
    assert is_connected(path_graph(10))
    split = from_edges([(0, 1), (2, 3)], num_vertices=4)
    assert not is_connected(split)
    assert largest_component_fraction(split) == pytest.approx(0.5)


def test_largest_component_with_isolated():
    graph = from_edges([(0, 1)], num_vertices=4)
    assert largest_component_fraction(graph) == pytest.approx(0.5)
