"""Unit tests for traversal/subgraph utilities."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import from_edges, path_graph, rmat, star
from repro.graph.traversal import (
    ego_network,
    filter_by_degree,
    induced_subgraph,
    k_hop_neighborhood,
    top_degree_vertices,
)


def test_k_hop_on_path():
    graph = path_graph(10)
    hops = k_hop_neighborhood(graph, np.array([5]), 2)
    assert hops.tolist() == [3, 4, 5, 6, 7]
    zero = k_hop_neighborhood(graph, np.array([5]), 0)
    assert zero.tolist() == [5]


def test_k_hop_multiple_sources(tiny_graph):
    hops = k_hop_neighborhood(tiny_graph, np.array([0, 4]), 1)
    # 0 -> {1,2}, 4 -> {5}
    assert hops.tolist() == [0, 1, 2, 4, 5]


def test_k_hop_validation(tiny_graph):
    with pytest.raises(GraphError, match="negative"):
        k_hop_neighborhood(tiny_graph, np.array([0]), -1)
    with pytest.raises(GraphError, match="out of range"):
        k_hop_neighborhood(tiny_graph, np.array([99]), 1)


def test_induced_subgraph(tiny_graph):
    sub, mapping = induced_subgraph(tiny_graph, np.array([0, 1, 2, 3]))
    assert sub.num_vertices == 4
    assert mapping.tolist() == [0, 1, 2, 3]
    # edges inside the set: 0->1, 0->2, 1->3, 2->3
    assert sub.num_edges == 4
    assert sorted(sub.neighbors(0).tolist()) == [1, 2]


def test_induced_subgraph_preserves_weights():
    graph = from_edges([(0, 1, 3.0), (1, 2, 5.0), (2, 0, 7.0)])
    sub, mapping = induced_subgraph(graph, np.array([0, 1]))
    assert sub.num_edges == 1
    assert sub.weights.tolist() == [3.0]


def test_induced_subgraph_renumbering():
    graph = path_graph(10)
    sub, mapping = induced_subgraph(graph, np.array([7, 8, 9]))
    assert mapping.tolist() == [7, 8, 9]
    assert sub.num_vertices == 3
    assert sub.num_edges == 4  # 7-8, 8-9 both directions


def test_filter_by_degree(skewed_graph):
    heavy = filter_by_degree(skewed_graph, min_out=50)
    assert np.all(skewed_graph.out_degrees(heavy) >= 50)
    mid = filter_by_degree(skewed_graph, min_out=2, max_out=5)
    degrees = skewed_graph.out_degrees(mid)
    assert np.all((degrees >= 2) & (degrees <= 5))


def test_ego_network():
    graph = star(8)
    ego, mapping = ego_network(graph, 0, hops=1)
    assert ego.num_vertices == 9  # the whole star
    leaf_ego, leaf_mapping = ego_network(graph, 3, hops=1)
    assert leaf_mapping.tolist() == [0, 3]
    with pytest.raises(GraphError, match="center"):
        ego_network(graph, 100)


def test_top_degree_vertices(skewed_graph):
    top = top_degree_vertices(skewed_graph, 5)
    degrees = skewed_graph.out_degrees()
    assert degrees[top[0]] == degrees.max()
    assert np.all(np.diff(degrees[top]) <= 0)
    top_in = top_degree_vertices(skewed_graph, 3, by="in")
    assert skewed_graph.in_degrees()[top_in[0]] == (
        skewed_graph.in_degrees().max()
    )
    with pytest.raises(GraphError, match="degree kind"):
        top_degree_vertices(skewed_graph, 3, by="total")
    assert top_degree_vertices(skewed_graph, 10**9).size == (
        skewed_graph.num_vertices
    )
