"""Unit tests for the device model, timing model, and micro-benchmark."""

import numpy as np
import pytest

from repro import config
from repro.graph.features import FrontierFeatures
from repro.hardware import (
    DeviceModel,
    GPUSpec,
    TimingModel,
    dgx1,
    measure_bandwidth_matrix,
    measure_comm_cost_matrix,
    single_gpu,
)


def feats(gini=0.0, entropy=0.0, avg_out=4.0, out_range=0.0,
          avg_in=4.0, in_range=0.0, size=100, edges=400):
    return FrontierFeatures(
        avg_in_degree=avg_in, avg_out_degree=avg_out,
        in_degree_range=in_range, out_degree_range=out_range,
        gini=gini, entropy=entropy, size=size, total_edges=edges,
    )


# ----------------------------------------------------------------------
# DeviceModel
# ----------------------------------------------------------------------
def test_cost_is_positive_and_deterministic():
    device = DeviceModel()
    a = device.true_edge_cost(feats(gini=0.4, entropy=0.5))
    b = device.true_edge_cost(feats(gini=0.4, entropy=0.5))
    assert a == b
    assert a > 0


def test_contention_grows_with_skew():
    device = DeviceModel(noise_amplitude=0.0)
    low = device.true_edge_cost(feats(gini=0.1, entropy=0.5))
    high = device.true_edge_cost(feats(gini=0.9, entropy=0.5))
    assert high > 1.5 * low


def test_irregularity_raises_cost():
    device = DeviceModel(noise_amplitude=0.0)
    smooth = device.true_edge_cost(feats(out_range=0.0))
    jagged = device.true_edge_cost(feats(out_range=2000.0))
    assert jagged > smooth


def test_noise_is_bounded():
    device = DeviceModel(noise_amplitude=0.05)
    clean = DeviceModel(noise_amplitude=0.0)
    for gini in (0.1, 0.3, 0.7):
        noisy_cost = device.true_edge_cost(feats(gini=gini))
        clean_cost = clean.true_edge_cost(feats(gini=gini))
        assert abs(noisy_cost / clean_cost - 1.0) <= 0.05 + 1e-9


def test_empty_frontier_cost_is_base():
    device = DeviceModel()
    cost = device.true_edge_cost(FrontierFeatures.empty())
    assert cost == pytest.approx(device.gpu.base_edge_cost_ns * 1e-9)


def test_oracle_callable():
    device = DeviceModel()
    oracle = device.oracle()
    f = feats(gini=0.5)
    assert oracle(f) == device.true_edge_cost(f)


# ----------------------------------------------------------------------
# TimingModel
# ----------------------------------------------------------------------
def test_sync_scales_with_workers(topology8):
    timing = TimingModel(topology8)
    s1 = timing.sync_seconds(1)
    s8 = timing.sync_seconds(8)
    spec = timing.sync
    assert s8 - s1 == pytest.approx(7 * spec.per_worker_us * 1e-6)
    assert timing.sync_seconds(0) == 0.0


def test_comm_cost_matches_bandwidth(topology8):
    timing = TimingModel(topology8)
    expected = config.BYTES_PER_EDGE / (
        topology8.effective_bandwidth(0, 3) * 1e9
    )
    assert timing.comm_seconds_per_edge(0, 3) == pytest.approx(expected)
    # local access is far cheaper than any remote access
    assert timing.comm_seconds_per_edge(0, 0) < 0.1 * (
        timing.comm_seconds_per_edge(0, 3)
    )


def test_compute_seconds_linear_in_edges(topology8):
    timing = TimingModel(topology8)
    f = feats()
    assert timing.compute_seconds(2000, f) == pytest.approx(
        2 * timing.compute_seconds(1000, f)
    )


def test_remote_edge_seconds_combines_terms(topology8):
    timing = TimingModel(topology8)
    f = feats()
    remote = timing.remote_edge_seconds(0, 7, 100, f)
    local = timing.remote_edge_seconds(0, 0, 100, f)
    assert remote > local


def test_serialization_and_transfer(topology8):
    timing = TimingModel(topology8)
    assert timing.serialization_seconds(0) == 0.0
    assert timing.serialization_seconds(100) > 0
    assert timing.transfer_seconds(0, 3, 10**6) > 0
    assert timing.transfer_seconds(0, 0, 10**6) < timing.transfer_seconds(
        0, 7, 10**6
    )


def test_kernel_launch(topology8):
    timing = TimingModel(topology8)
    assert timing.kernel_launch_seconds(3) == pytest.approx(
        3 * topology8.gpu.kernel_launch_us * 1e-6
    )


# ----------------------------------------------------------------------
# Micro-benchmark
# ----------------------------------------------------------------------
def test_microbench_error_bounded(topology8):
    true = topology8.effective_bandwidth_matrix()
    measured = measure_bandwidth_matrix(topology8, seed=0, error=0.02)
    ratio = measured / true
    assert np.all(np.abs(ratio - 1.0) <= 0.021)
    assert np.allclose(measured, measured.T)
    # local figures are exact datasheet values
    assert np.allclose(np.diag(measured), np.diag(true))


def test_microbench_deterministic(topology8):
    a = measure_bandwidth_matrix(topology8, seed=1)
    b = measure_bandwidth_matrix(topology8, seed=1)
    c = measure_bandwidth_matrix(topology8, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_comm_cost_matrix(topology8):
    costs = measure_comm_cost_matrix(topology8, config.BYTES_PER_EDGE,
                                     seed=0)
    assert costs.shape == (8, 8)
    assert np.all(costs > 0)
    # remote pairs cost more than local access
    assert np.all(costs >= np.diag(costs).max() - 1e-15)


def test_custom_gpu_spec():
    spec = GPUSpec(base_edge_cost_ns=100.0, local_bandwidth_gbps=500.0)
    topo = single_gpu(gpu=spec)
    timing = TimingModel(topo)
    assert timing.comm_seconds_per_edge(0, 0) == pytest.approx(
        config.BYTES_PER_EDGE / (500.0 * 1e9)
    )
