"""Unit tests for interconnect topologies."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.hardware import (
    LinkSpec,
    NVLINK_LANE_GBPS,
    PCIE_GBPS,
    Topology,
    dgx1,
    fully_connected,
    ring_topology,
    single_gpu,
)


def test_dgx1_lane_matrix_properties(topology8):
    lanes = topology8.lane_matrix
    assert lanes.shape == (8, 8)
    assert np.array_equal(lanes, lanes.T)
    assert np.all(np.diag(lanes) == 0)
    # DGX-1V: exactly six NVLink lanes per GPU
    assert np.all(lanes.sum(axis=1) == 6)


def test_dgx1_has_unlinked_pairs(topology8):
    # the paper's motivating example: 0 and 7 share no direct link
    assert topology8.lane_matrix[0, 7] == 0


def test_direct_bandwidth(topology8):
    assert topology8.direct_bandwidth(0, 3) == 2 * NVLINK_LANE_GBPS
    assert topology8.direct_bandwidth(0, 1) == NVLINK_LANE_GBPS
    assert topology8.direct_bandwidth(0, 7) == PCIE_GBPS
    assert topology8.direct_bandwidth(2, 2) == pytest.approx(
        topology8.gpu.local_bandwidth_gbps
    )


def test_effective_bandwidth_uses_transit(topology8):
    # 0-7 has no link, but 0-3 (2 lanes) then 3-7 (2 lanes) gives a
    # 2-hop path of 50 GB/s bottleneck -> 25 GB/s effective > PCIe
    assert topology8.effective_bandwidth(0, 7) == pytest.approx(25.0)
    assert topology8.effective_bandwidth(0, 7) > PCIE_GBPS


def test_effective_bandwidth_symmetric(topology8):
    eff = topology8.effective_bandwidth_matrix()
    assert np.allclose(eff, eff.T)
    assert np.all(eff >= PCIE_GBPS)


def test_effective_never_below_direct(topology8):
    eff = topology8.effective_bandwidth_matrix()
    direct = topology8.direct_bandwidth_matrix()
    assert np.all(eff >= direct - 1e-9)


def test_find_ring_dgx1(topology8):
    ring = topology8.find_ring()
    assert ring is not None
    assert sorted(ring) == list(range(8))
    lanes = topology8.lane_matrix
    for idx in range(8):
        a, b = ring[idx], ring[(idx + 1) % 8]
        assert lanes[a, b] > 0


def test_find_ring_missing_for_five_gpu_subset():
    assert dgx1(5).find_ring() is None


def test_subset_renumbers():
    sub = dgx1(4)
    assert sub.num_gpus == 4
    assert sub.lane_matrix[0, 3] == dgx1(8).lane_matrix[0, 3]
    with pytest.raises(TopologyError):
        dgx1(9)
    with pytest.raises(TopologyError):
        dgx1(8).subset([0, 0, 1])


def test_aggregate_bandwidth(topology8):
    total = topology8.aggregate_bandwidth(range(8))
    # 24 lanes in the hybrid cube mesh
    assert total == pytest.approx(24 * NVLINK_LANE_GBPS)
    pair = topology8.aggregate_bandwidth([0, 3])
    assert pair == pytest.approx(2 * NVLINK_LANE_GBPS)
    assert topology8.aggregate_bandwidth([0]) == 0.0


def test_ring_topology_preset():
    ring = ring_topology(4, lanes=2)
    assert ring.find_ring() is not None
    assert ring.direct_bandwidth(0, 1) == 2 * NVLINK_LANE_GBPS
    assert ring.direct_bandwidth(0, 2) == PCIE_GBPS
    two = ring_topology(2)
    assert two.lane_matrix[0, 1] == 2


def test_fully_connected_preset():
    full = fully_connected(4)
    assert np.all(full.lane_matrix + np.eye(4, dtype=int) >= 1)
    assert full.find_ring() is not None


def test_single_gpu_preset():
    single = single_gpu()
    assert single.num_gpus == 1
    assert single.find_ring() == [0]
    assert single.effective_bandwidth_matrix().shape == (1, 1)


def test_subset_single_member(topology8):
    sub = topology8.subset([5])
    assert sub.num_gpus == 1
    assert sub.lane_matrix.shape == (1, 1)
    assert sub.effective_bandwidth_matrix().shape == (1, 1)
    # self-bandwidth is HBM, not interconnect
    assert sub.effective_bandwidth(0, 0) == pytest.approx(
        sub.gpu.local_bandwidth_gbps
    )


def test_subset_disconnected_member(topology8):
    # 0 and 7 share no NVLink in the cube mesh; a {0, 7} subset keeps
    # both reachable over PCIe (no path through the dropped GPUs)
    sub = topology8.subset([0, 7])
    assert sub.num_gpus == 2
    assert sub.lane_matrix[0, 1] == 0
    assert sub.effective_bandwidth(0, 1) == pytest.approx(PCIE_GBPS)


def test_degraded_link_loses_lanes(topology8):
    degraded = topology8.with_degraded_link(0, 3, lanes=1)
    assert topology8.lane_matrix[0, 3] == 2  # original untouched
    assert degraded.lane_matrix[0, 3] == 1
    assert degraded.lane_matrix[3, 0] == 1
    assert degraded.direct_bandwidth(0, 3) == NVLINK_LANE_GBPS
    # every other link is untouched
    mask = np.ones((8, 8), dtype=bool)
    mask[0, 3] = mask[3, 0] = False
    assert np.array_equal(degraded.lane_matrix[mask],
                          topology8.lane_matrix[mask])


def test_degraded_link_to_zero_reroutes(topology8):
    dead = topology8.with_degraded_link(0, 1, lanes=0)
    assert dead.lane_matrix[0, 1] == 0
    assert dead.direct_bandwidth(0, 1) == PCIE_GBPS
    # multi-hop transit still beats PCIe on the remaining fabric
    assert dead.effective_bandwidth(0, 1) > PCIE_GBPS
    assert dead.effective_bandwidth(0, 1) < topology8.effective_bandwidth(
        0, 1
    )


def test_degraded_link_validation(topology8):
    with pytest.raises(TopologyError):
        topology8.with_degraded_link(2, 2)
    with pytest.raises(TopologyError):
        topology8.with_degraded_link(0, 9)
    with pytest.raises(TopologyError):
        topology8.with_degraded_link(0, 1, lanes=-1)


def test_degraded_then_subset_composes(topology8):
    # chaos re-derives steal paths from subset-of-degraded topologies;
    # the two transforms must compose without touching the original
    combo = topology8.with_degraded_link(0, 3, lanes=0).subset(range(4))
    assert combo.num_gpus == 4
    assert combo.lane_matrix[0, 3] == 0
    assert combo.lane_matrix[0, 1] == topology8.lane_matrix[0, 1]


def test_link_validation():
    with pytest.raises(TopologyError):
        LinkSpec(0, 0, 1)
    with pytest.raises(TopologyError):
        LinkSpec(0, 1, -1)
    with pytest.raises(TopologyError, match="out of range"):
        Topology(2, [LinkSpec(0, 5, 1)])
    with pytest.raises(TopologyError):
        Topology(0)
