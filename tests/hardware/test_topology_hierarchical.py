"""Hierarchical (multi-node) topology invariants.

The two-level stealing design relies on the topology keeping its link
classes straight: intra-node traffic must never be priced on the IB
fabric, cross-node traffic must never borrow NVLink rates, and the
node groupings must survive every transformation (subset, degraded
links, chaos composition).
"""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.hardware import Topology, cluster, dgx1, parse_topology
from repro.hardware.spec import (
    ETHERNET_GBPS,
    IB_LANE_GBPS,
    LinkSpec,
    NVLINK_LANE_GBPS,
)


@pytest.fixture(scope="module")
def cluster2x4():
    return cluster(2, 4)


def _cross_node_mask(topology):
    nodes = topology.node_assignment
    return nodes[:, None] != nodes[None, :]


class TestLinkClasses:
    def test_intra_node_never_routes_over_inter_node_links(self):
        """Intra-node effective bandwidth ignores the IB fabric.

        A cluster with a monster 100-rail fabric must price GPU pairs
        inside one node exactly like the railless cluster: NVLink paths
        never transit another node, whatever the fabric looks like.
        """
        thin = cluster(2, 4, ib_rails=1)
        fat = cluster(2, 4, ib_rails=100)
        cross = _cross_node_mask(thin)
        thin_eff = thin.effective_bandwidth_matrix()
        fat_eff = fat.effective_bandwidth_matrix()
        np.testing.assert_array_equal(thin_eff[~cross], fat_eff[~cross])

    def test_cross_node_pairs_capped_at_fabric_class(self, cluster2x4):
        """No cross-node pair can beat its node pair's IB rails."""
        cross = _cross_node_mask(cluster2x4)
        eff = cluster2x4.effective_bandwidth_matrix()
        rails = cluster2x4.inter_node_lane_matrix.max()
        assert (eff[cross] <= rails * IB_LANE_GBPS).all()
        # ... and NVLink-class rates stay strictly intra-node
        assert (eff[cross] < NVLINK_LANE_GBPS).all()

    def test_intra_node_matches_single_server(self, cluster2x4):
        """Each node's block equals the standalone 4-GPU server."""
        server = dgx1(4).effective_bandwidth_matrix()
        eff = cluster2x4.effective_bandwidth_matrix()
        for node in range(cluster2x4.num_nodes):
            members = cluster2x4.node_members(node)
            np.testing.assert_array_equal(
                eff[np.ix_(members, members)], server
            )

    def test_railless_cluster_falls_back_to_ethernet(self):
        bare = cluster(2, 2, ib_rails=0)
        cross = _cross_node_mask(bare)
        eff = bare.effective_bandwidth_matrix()
        np.testing.assert_array_equal(
            eff[cross], np.full(cross.sum(), ETHERNET_GBPS)
        )

    def test_nvlink_links_may_not_cross_nodes(self):
        with pytest.raises(TopologyError, match="crosses nodes"):
            Topology(
                4,
                links=[LinkSpec(0, 2, 1)],
                node_of=[0, 0, 1, 1],
            )


class TestGroupingPreservation:
    def test_subset_preserves_groupings(self, cluster2x4):
        """Cutting one GPU per node keeps both nodes, renumbered."""
        sub = cluster2x4.subset([0, 1, 2, 4, 5])
        assert sub.num_nodes == 2
        assert list(sub.node_assignment) == [0, 0, 0, 1, 1]
        # IB rails survive the cut on the surviving node pair
        assert sub.inter_node_lane_matrix[0, 1] == \
            cluster2x4.inter_node_lane_matrix[0, 1]

    def test_subset_within_one_node_collapses_to_single_node(
        self, cluster2x4
    ):
        sub = cluster2x4.subset(cluster2x4.node_members(1))
        assert sub.num_nodes == 1

    def test_subset_renumbers_nodes_compactly(self):
        topo = cluster(3, 2)
        sub = topo.subset([0, 4, 5])  # nodes 0 and 2 survive
        assert sub.num_nodes == 2
        assert list(sub.node_assignment) == [0, 1, 1]

    def test_degraded_intra_node_link_preserves_groupings(
        self, cluster2x4
    ):
        hurt = cluster2x4.with_degraded_link(0, 3, lanes=0)
        assert hurt.num_nodes == cluster2x4.num_nodes
        np.testing.assert_array_equal(
            hurt.node_assignment, cluster2x4.node_assignment
        )
        np.testing.assert_array_equal(
            hurt.inter_node_lane_matrix,
            cluster2x4.inter_node_lane_matrix,
        )

    def test_degraded_inter_node_pair_drops_rails(self, cluster2x4):
        """Degrading a cross-node GPU pair degrades the node pair."""
        hurt = cluster2x4.with_degraded_link(0, 4, lanes=0)
        assert hurt.inter_node_lane_matrix[0, 1] == 0
        cross = _cross_node_mask(hurt)
        eff = hurt.effective_bandwidth_matrix()
        np.testing.assert_array_equal(
            eff[cross], np.full(cross.sum(), ETHERNET_GBPS)
        )
        # the NVLink fabric inside each node is untouched
        np.testing.assert_array_equal(
            hurt.lane_matrix, cluster2x4.lane_matrix
        )

    def test_chaos_degrade_composes_with_hierarchy(self, cluster2x4):
        """degrade -> subset -> degrade keeps the class separation."""
        hurt = cluster2x4.with_degraded_link(1, 2, lanes=1)
        sub = hurt.subset([0, 1, 2, 4, 5])
        again = sub.with_degraded_link(0, 3, lanes=0)
        assert again.num_nodes == 2
        cross = _cross_node_mask(again)
        eff = again.effective_bandwidth_matrix()
        # cross-node entries never exceed the fabric class even after
        # two rounds of damage and a renumbering
        assert (eff[cross] <= IB_LANE_GBPS).all()
        assert (eff[~cross & ~np.eye(5, dtype=bool)] >= eff[cross].max()).all()


class TestClusterPreset:
    def test_cluster_1xk_matches_dgx1(self):
        one = cluster(1, 6)
        ref = dgx1(6)
        np.testing.assert_array_equal(one.lane_matrix, ref.lane_matrix)
        assert one.num_nodes == 1

    def test_cluster_validation(self):
        with pytest.raises(TopologyError, match="at least one node"):
            cluster(0, 4)
        with pytest.raises(TopologyError, match="1..8"):
            cluster(2, 9)
        with pytest.raises(TopologyError, match="negative"):
            cluster(2, 4, ib_rails=-1)


class TestParseTopology:
    def test_none_and_dgx1_default(self):
        assert parse_topology(None).name == "dgx1"
        assert parse_topology("dgx1", num_gpus=4).num_gpus == 4
        assert parse_topology("default").num_gpus == 8

    def test_nodes_selector(self):
        topo = parse_topology("nodes=2x4")
        assert topo.name == "cluster2x4"
        assert topo.num_gpus == 8
        assert topo.num_nodes == 2

    def test_passthrough_instance(self, cluster2x4):
        assert parse_topology(cluster2x4) is cluster2x4

    def test_rejects_unknown_selector(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            parse_topology("torus=3x3")

    def test_rejects_gpu_count_mismatch(self):
        with pytest.raises(TopologyError, match="num_gpus=6"):
            parse_topology("nodes=2x4", num_gpus=6)
