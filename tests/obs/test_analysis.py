"""Unit tests for critical-path attribution and what-if replay."""

import json

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.hardware import dgx1
from repro.obs.analysis import (
    ATTRIBUTION_BUCKETS,
    DagNode,
    SpanDag,
    WhatIf,
    analyze,
    build_dag,
    format_replay,
    format_report,
    replay,
)
from repro.runtime import BSPEngine
from repro.runtime.trace import load_trace, save_trace


@pytest.fixture(scope="module")
def result(skewed_graph, skewed_partition, source):
    return BSPEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )


def _records():
    """Two hand-checkable supersteps, 3 GPUs, gpu2 evicted.

    Breakdown buckets sum to wall in both (as engine traces do);
    iteration 1 applied FSteal.
    """
    return [
        {
            "iteration": 0, "wall_ms": 4.0,
            "busy_ms": [1.0, 3.0, 0.0], "stall_ms": [2.0, 0.0, 0.0],
            "active_workers": [0, 1],
            "breakdown_ms": {"compute": 1.5, "communication": 1.5,
                             "serialization": 0.2, "sync": 0.5,
                             "overhead": 0.3},
            "frontier_edges": 100, "stolen_edges": 0,
            "fsteal": False, "group_size": 2,
        },
        {
            "iteration": 1, "wall_ms": 3.0,
            "busy_ms": [2.0, 1.0, 0.0], "stall_ms": [0.0, 1.0, 0.0],
            "active_workers": [0, 1],
            "breakdown_ms": {"compute": 1.0, "communication": 1.0,
                             "serialization": 0.2, "sync": 0.5,
                             "overhead": 0.3},
            "frontier_edges": 200, "stolen_edges": 50,
            "fsteal": True, "group_size": 2,
        },
    ]


def _header():
    return {"engine": "gum", "algorithm": "bfs", "graph": "synthetic",
            "num_gpus": 3, "total_ms": 7.0}


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def test_attribution_sums_to_total_ms(result):
    report = analyze(result)
    assert report.total_ms == pytest.approx(result.total_ms, rel=1e-9)
    bucket_sum = sum(report.buckets_ms.values())
    # acceptance criterion: buckets sum to total within 1%
    assert bucket_sum == pytest.approx(report.total_ms, rel=0.01)
    # and in practice to machine precision
    assert bucket_sum == pytest.approx(report.total_ms, rel=1e-9)
    assert set(report.buckets_ms) == set(ATTRIBUTION_BUCKETS)


def test_per_iteration_attribution_exact():
    report = analyze((_header(), _records()))
    first = report.iterations[0]
    assert first.attribution_ms == pytest.approx({
        # stall = critical - mean busy = 3.0 - 2.0, pulled out of the
        # engine's communication bucket
        "compute": 1.5, "communication": 0.5,
        "stall": 1.0, "coordinator": 1.0,
    })
    assert sum(first.attribution_ms.values()) == pytest.approx(
        first.wall_ms
    )


def test_straggler_naming():
    report = analyze((_header(), _records()))
    assert report.straggler_series() == [1, 0]
    assert report.straggler_counts == [1, 1, 0]
    # gpu0's critical superstep is shorter (2.0 ms vs 3.0 ms), so the
    # dominant straggler tie-breaks by count order
    assert report.dominant_straggler() in (0, 1)
    assert report.per_gpu_critical_ms == pytest.approx([2.0, 3.0, 0.0])


def test_analyze_loaded_trace_matches_runresult(tmp_path, result):
    path = tmp_path / "run.jsonl"
    save_trace(result, path)
    from_file = analyze(load_trace(path))
    from_result = analyze(result)
    assert from_file.total_ms == pytest.approx(
        from_result.total_ms, rel=1e-6
    )
    assert (from_file.straggler_series()
            == from_result.straggler_series())
    assert from_file.num_gpus == from_result.num_gpus


def test_report_as_dict_is_json(result):
    payload = analyze(result).as_dict()
    json.dumps(payload)
    assert payload["num_iterations"] == result.num_iterations


def test_analyze_empty_run():
    report = analyze(({}, []))
    assert report.total_ms == 0.0
    assert report.num_iterations == 0
    assert report.dominant_straggler() is None
    assert report.critical_path_ms == 0.0


# ----------------------------------------------------------------------
# The DAG
# ----------------------------------------------------------------------
def test_dag_shape_and_longest_path():
    dag = build_dag((_header(), _records()))
    # source + (2 busy + barrier + coordinator) * 2 + sink
    assert len(dag) == 10
    length, path = dag.longest_path()
    # barrier-to-barrier structure: critical busy + coordinator tail
    # per superstep = the superstep's wall; summed = total
    assert length == pytest.approx(7.0)
    assert path[0] == "source" and path[-1] == "sink"
    assert "busy:0:gpu1" in path  # iteration 0's straggler
    assert "busy:1:gpu0" in path  # iteration 1's straggler


def test_dag_longest_path_equals_total(result):
    length, __ = build_dag(result).longest_path()
    assert length == pytest.approx(result.total_ms, rel=1e-9)


def test_dag_rejects_duplicates_and_unknown_edges():
    dag = SpanDag()
    dag.add_node(DagNode(id="a", kind="busy", duration_ms=1.0))
    with pytest.raises(TraceFormatError, match="duplicate"):
        dag.add_node(DagNode(id="a", kind="busy", duration_ms=2.0))
    with pytest.raises(TraceFormatError, match="unknown"):
        dag.add_edge("a", "missing")


def test_empty_dag_longest_path():
    assert SpanDag().longest_path() == (0.0, [])


# ----------------------------------------------------------------------
# What-if replay
# ----------------------------------------------------------------------
def test_noop_replay_is_exact(result):
    outcome = replay(result, WhatIf())
    # acceptance criterion: scale factor 1.0 reproduces the original
    # end-to-end time *exactly*: every per-superstep wall is unchanged
    # bit-for-bit, so the replayed total equals the trace's baseline
    # (result.total_ms sums the same walls bucket-major, which may
    # differ in the last float bit — hence the approx there)
    assert outcome.wall_ms_series == [
        rec.wall_seconds * 1e3 for rec in result.iterations
    ]
    assert outcome.total_ms == outcome.baseline_ms
    assert outcome.delta_ms == 0.0
    assert outcome.speedup == 1.0
    assert outcome.total_ms == pytest.approx(result.total_ms, rel=1e-12)


def test_noop_scale_factors_are_noop(result):
    scenario = WhatIf(gpu_compute_scale={0: 1.0}, compute_scale=1.0)
    assert scenario.is_noop()
    outcome = replay(result, scenario)
    assert outcome.total_ms == outcome.baseline_ms


def test_scale_straggler_down_speeds_up():
    source = (_header(), _records())
    outcome = replay(source, WhatIf(gpu_compute_scale={1: 0.5}))
    # iteration 0: compute fraction = 1.5/2.0; busy1 3.0 -> 1.875,
    # still the straggler, wall 4.0 -> 2.875. iteration 1: gpu0
    # stays critical, wall unchanged.
    assert outcome.baseline_ms == pytest.approx(7.0)
    assert outcome.total_ms == pytest.approx(5.875)
    assert outcome.speedup > 1.0


def test_scale_up_slows_down():
    source = (_header(), _records())
    outcome = replay(source, WhatIf(compute_scale=2.0))
    assert outcome.total_ms > outcome.baseline_ms


def test_zero_decision_overhead():
    source = (_header(), _records())
    outcome = replay(source, WhatIf(zero_decision_overhead=True))
    # exactly the two 0.3 ms overhead charges disappear
    assert outcome.total_ms == pytest.approx(7.0 - 0.6)
    assert outcome.wall_ms_series[0] >= 3.0  # never below the barrier


def test_drop_fsteal_charges_straggler():
    source = (_header(), _records())
    outcome = replay(source, WhatIf(drop_fsteal=True))
    # iteration 1: 50 stolen edges at (3.0 ms / 200 edges) land back
    # on gpu0 -> critical 2.75, wall 3.75; iteration 0 untouched
    assert outcome.wall_ms_series[0] == pytest.approx(4.0)
    assert outcome.wall_ms_series[1] == pytest.approx(3.75)
    assert outcome.total_ms > outcome.baseline_ms


def test_whatif_describe():
    assert WhatIf().describe() == "no-op"
    text = WhatIf(gpu_compute_scale={2: 0.5},
                  zero_decision_overhead=True).describe()
    assert "gpu2 compute x0.5" in text
    assert "decision overhead" in text


def test_replay_report_as_dict(result):
    payload = replay(result, WhatIf(compute_scale=0.5)).as_dict()
    json.dumps(payload)
    assert payload["speedup"] >= 1.0


# ----------------------------------------------------------------------
# Malformed input
# ----------------------------------------------------------------------
def test_analyze_rejects_non_trace():
    with pytest.raises(TraceFormatError, match="cannot analyze"):
        analyze(42.0)


def test_analyze_rejects_missing_busy():
    with pytest.raises(TraceFormatError, match="busy_ms"):
        analyze(({}, [{"iteration": 0, "wall_ms": 1.0}]))


def test_analyze_rejects_shape_mismatch():
    record = {"iteration": 0, "wall_ms": 1.0,
              "busy_ms": [1.0, 2.0], "stall_ms": [0.0]}
    with pytest.raises(TraceFormatError, match="stall_ms"):
        analyze(({}, [record]))


def test_analyze_rejects_out_of_range_worker():
    record = {"iteration": 0, "wall_ms": 1.0, "busy_ms": [1.0, 2.0],
              "stall_ms": [0.0, 0.0], "active_workers": [0, 5]}
    with pytest.raises(TraceFormatError, match="out of\n*.range|out of"):
        analyze(({}, [record]))


def test_foreign_trace_without_breakdown():
    # a minimal non-repro trace still analyzes: critical busy becomes
    # compute, the post-barrier remainder becomes coordinator
    record = {"iteration": 0, "wall_ms": 5.0, "busy_ms": [1.0, 4.0]}
    report = analyze([record])
    assert report.total_ms == pytest.approx(5.0)
    assert report.buckets_ms["compute"] == pytest.approx(4.0)
    assert report.buckets_ms["coordinator"] == pytest.approx(1.0)
    assert sum(report.buckets_ms.values()) == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def test_format_report_and_replay():
    source = (_header(), _records())
    text = format_report(analyze(source))
    assert "critical path" in text
    for bucket in ATTRIBUTION_BUCKETS:
        assert bucket in text
    assert "dominant" in text
    replay_text = format_replay(
        replay(source, WhatIf(zero_decision_overhead=True))
    )
    assert "what-if" in replay_text
    assert "->" in replay_text
