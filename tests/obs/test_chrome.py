"""Chrome trace_event export: schema validity and clock separation."""

import json

import numpy as np
import pytest

from repro.obs import (
    ChromeTraceSink,
    SpanRecord,
    Tracer,
    chrome_trace_events,
    write_chrome_trace,
)


@pytest.fixture()
def mixed_records():
    return [
        SpanRecord(name="superstep", track="coordinator",
                   virtual_start=0.0, virtual_dur=0.5,
                   attrs={"iteration": 0}),
        SpanRecord(name="busy", track="gpu0",
                   virtual_start=0.0, virtual_dur=0.3),
        SpanRecord(name="busy", track="gpu1",
                   virtual_start=0.0, virtual_dur=0.5),
        SpanRecord(name="fsteal.milp", track="coordinator",
                   wall_start=10.0, wall_dur=0.001,
                   attrs={"solver": "greedy"}),
        SpanRecord(name="osteal.group_change", track="coordinator",
                   kind="instant", virtual_start=0.5, virtual_dur=0.0,
                   attrs={"from": 8, "to": 2}),
    ]


def test_event_schema(mixed_records):
    events = chrome_trace_events(mixed_records)
    json.dumps(events)  # serializable end to end
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "M", "i")
        if event["ph"] == "X":
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        if event["ph"] == "i":
            assert event["s"] == "p"


def test_one_process_per_track(mixed_records):
    events = chrome_trace_events(mixed_records)
    names = {e["args"]["name"]: e["pid"]
             for e in events if e["ph"] == "M"}
    # virtual tracks plus the host-clock shadow track
    assert set(names) == {"coordinator", "gpu0", "gpu1",
                          "coordinator (host)"}
    # coordinator first, gpus in numeric order
    assert names["coordinator"] == 0
    assert names["gpu0"] < names["gpu1"]
    # pids are dense and every event references a declared process
    assert sorted(names.values()) == list(range(len(names)))
    assert {e["pid"] for e in events} <= set(names.values())


def test_clock_domains_never_share_a_process(mixed_records):
    events = chrome_trace_events(mixed_records)
    names = {e["pid"]: e["args"]["name"]
             for e in events if e["ph"] == "M"}
    host_pids = {pid for pid, name in names.items()
                 if name.endswith("(host)")}
    for event in events:
        if event["ph"] != "X":
            continue
        if event["name"] == "fsteal.milp":
            assert event["pid"] in host_pids
            # rebased to the first host timestamp
            assert event["ts"] == 0.0
        else:
            assert event["pid"] not in host_pids


def test_microsecond_scaling(mixed_records):
    events = chrome_trace_events(mixed_records)
    superstep = next(e for e in events if e["name"] == "superstep")
    assert superstep["ts"] == 0.0
    assert superstep["dur"] == pytest.approx(0.5e6)


def test_numpy_attrs_are_coerced():
    record = SpanRecord(
        name="x", virtual_start=0.0, virtual_dur=1.0,
        attrs={"count": np.int64(3), "loads": np.array([1, 2])},
    )
    events = chrome_trace_events([record])
    payload = json.dumps(events)
    assert json.loads(payload)[-1]["args"] == {"count": 3,
                                               "loads": [1, 2]}


def test_write_chrome_trace_container(tmp_path, mixed_records):
    path = write_chrome_trace(tmp_path / "t.json", mixed_records,
                              meta={"engine": "gum"})
    data = json.load(open(path))
    assert set(data) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert data["displayTimeUnit"] == "ms"
    assert data["otherData"] == {"engine": "gum"}
    assert len(data["traceEvents"]) > len(mixed_records)  # + metadata


def test_chrome_sink_writes_on_close(tmp_path):
    path = tmp_path / "sink.json"
    tracer = Tracer(sinks=[ChromeTraceSink(path)])
    tracer.virtual_span("busy", start=0.0, dur=1.0, track="gpu0")
    assert not path.exists()
    tracer.close()
    data = json.load(open(path))
    assert any(e["name"] == "busy" for e in data["traceEvents"])
    tracer.close()  # idempotent, does not rewrite
