"""Chrome-trace round-trips for chaos runs.

The Perfetto export is the artifact people attach to incident reports,
so the fault markers a chaos run emits must survive the full loop:
``result_to_spans`` -> ``write_chrome_trace`` -> ``json.load``. These
tests pin that, plus the two container edge cases: an empty run still
writes a loadable file, and a truncated file fails loudly (the Chrome
container is a single JSON object — tail-tolerance is the live
stream's job, not this format's).
"""

import json

import pytest

import repro
from repro.chaos import ChaosController, ChaosScenario, FaultSpec
from repro.core import GumConfig
from repro.obs import (
    ChromeTraceSink,
    InMemorySink,
    Tracer,
    result_to_spans,
    write_chrome_trace,
)
from repro.runtime.metrics import RunResult


@pytest.fixture(scope="module")
def chaos_result(skewed_graph, source):
    chaos = ChaosController(ChaosScenario(
        name="roundtrip-kill",
        faults=(FaultSpec("kill_worker", 1, {"worker": 2}),),
        seed=0,
    ))
    return repro.run(
        skewed_graph, "bfs", num_gpus=4, source=source,
        gum_config=GumConfig(cost_model="oracle"), chaos=chaos,
    )


def _load_trace(path):
    with open(path) as handle:
        return json.load(handle)


def _chaos_markers(payload):
    return [e for e in payload["traceEvents"]
            if e.get("cat") == "chaos"]


def test_fault_markers_survive_roundtrip(tmp_path, chaos_result):
    fired = chaos_result.chaos["events"]
    assert fired, "scenario must actually fire for this test to bite"

    path = write_chrome_trace(
        tmp_path / "chaos.trace.json",
        result_to_spans(chaos_result),
        meta={"scenario": "roundtrip-kill"},
    )
    payload = _load_trace(path)
    markers = _chaos_markers(payload)
    assert len(markers) == len(fired)
    marker, event = markers[0], fired[0]
    assert marker["name"] == f"chaos.{event['kind']}"
    assert marker["ph"] == "i"  # instant, renders as a marker line
    assert marker["args"]["kind"] == event["kind"]
    assert marker["args"]["iteration"] == event["iteration"]
    assert payload["otherData"]["scenario"] == "roundtrip-kill"


def test_marker_lands_before_its_faulted_iteration(tmp_path,
                                                   chaos_result):
    path = write_chrome_trace(tmp_path / "t.json",
                              result_to_spans(chaos_result))
    events = _load_trace(path)["traceEvents"]
    marker = _chaos_markers({"traceEvents": events})[0]
    faulted = marker["args"]["iteration"]
    superstep_ts = {
        e["args"]["iteration"]: e["ts"]
        for e in events
        if e.get("name") == "superstep" and "args" in e
    }
    # the marker sits exactly at the virtual clock where the faulted
    # superstep begins — where BSPEngine._apply_faults stamped it live
    assert marker["ts"] == pytest.approx(superstep_ts[faulted])
    json.dumps(events)  # args stayed JSON-pure through the round trip


def test_live_chrome_sink_carries_the_same_markers(tmp_path,
                                                   skewed_graph,
                                                   source):
    """A ChromeTraceSink attached during the run and the post-hoc
    export agree on the fault markers (name, ts, iteration)."""
    chaos = ChaosController(ChaosScenario(
        name="live-vs-posthoc",
        faults=(FaultSpec("kill_worker", 1, {"worker": 2}),),
        seed=0,
    ))
    live_path = tmp_path / "live.trace.json"
    tracer = Tracer(sinks=[InMemorySink(),
                           ChromeTraceSink(live_path)])
    result = repro.run(
        skewed_graph, "bfs", num_gpus=4, source=source,
        gum_config=GumConfig(cost_model="oracle"), chaos=chaos,
        tracer=tracer,
    )
    tracer.close()
    posthoc_path = write_chrome_trace(tmp_path / "posthoc.trace.json",
                                      result_to_spans(result))

    def marker_keys(path):
        return sorted(
            (e["name"], e["ts"], e["args"]["iteration"])
            for e in _chaos_markers(_load_trace(path))
        )

    assert marker_keys(live_path) == marker_keys(posthoc_path)
    assert marker_keys(live_path)


def test_empty_run_writes_a_loadable_trace(tmp_path):
    import numpy as np

    empty = RunResult(engine="gum", algorithm="bfs", graph_name="TX",
                      num_gpus=4, values=np.zeros(1), iterations=[])
    path = write_chrome_trace(tmp_path / "empty.trace.json",
                              result_to_spans(empty),
                              meta={"note": "zero iterations"})
    payload = _load_trace(path)
    # no spans, but the container is complete and Perfetto-loadable
    assert payload["traceEvents"] == []
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"]["note"] == "zero iterations"


def test_truncated_trace_fails_loudly(tmp_path, chaos_result):
    path = write_chrome_trace(tmp_path / "cut.trace.json",
                              result_to_spans(chaos_result))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 40])
    with pytest.raises(json.JSONDecodeError):
        _load_trace(path)


def test_chrome_sink_close_is_idempotent(tmp_path, chaos_result):
    path = tmp_path / "once.trace.json"
    sink = ChromeTraceSink(path)
    for span in result_to_spans(chaos_result):
        sink.emit(span)
    sink.close()
    first = path.read_bytes()
    sink.close()  # second close must not rewrite or duplicate
    assert path.read_bytes() == first
