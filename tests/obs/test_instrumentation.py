"""End-to-end observability: engines emit spans/metrics when asked,
and cost nothing measurable when they are not."""

import pytest

from repro.baselines import GrouteEngine, GunrockEngine
from repro.core import GumConfig, GumEngine
from repro.hardware import dgx1
from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    Tracer,
    result_to_spans,
)


@pytest.fixture(scope="module")
def traced_gum(skewed_graph, skewed_partition, source):
    sink = InMemorySink()
    tracer = Tracer(sinks=[sink])
    metrics = MetricsRegistry()
    engine = GumEngine(dgx1(8), config=GumConfig(cost_model="oracle"),
                       tracer=tracer, metrics=metrics)
    result = engine.run(skewed_graph, skewed_partition, "bfs",
                        source=source)
    return result, sink.records, metrics


def test_gum_emits_superstep_and_decision_spans(traced_gum):
    result, records, _ = traced_gum
    names = {r.name for r in records}
    assert "run" in names
    assert "superstep" in names
    assert "gum.fsteal.milp" in names or "gum.osteal" in names
    supersteps = [r for r in records if r.name == "superstep"]
    assert len(supersteps) == result.num_iterations
    # supersteps tile the virtual timeline without gaps
    clock = 0.0
    for span in supersteps:
        assert span.virtual_start == pytest.approx(clock)
        clock += span.virtual_dur
    assert clock == pytest.approx(result.total_seconds)


@pytest.fixture(scope="module")
def traced_road(road_graph):
    """A long-tail run that reliably folds the OSteal group."""
    import numpy as np

    from repro.partition import random_partition

    sink = InMemorySink()
    tracer = Tracer(sinks=[sink])
    engine = GumEngine(dgx1(8), config=GumConfig(cost_model="oracle"),
                       tracer=tracer)
    source = int(np.argmax(road_graph.out_degrees()))
    result = engine.run(road_graph, random_partition(road_graph, 8, seed=0),
                        "bfs", source=source)
    return result, sink.records


def test_gum_osteal_spans_and_group_change_instants(traced_road):
    result, records = traced_road
    assert min(result.group_size_series()) < result.num_gpus
    osteal = [r for r in records if r.name == "gum.osteal"]
    assert osteal, "OSteal decisions must be spanned"
    assert all("group_size" in r.attrs for r in osteal)
    enumerations = [r for r in records if r.name == "osteal.enumerate"]
    assert enumerations
    assert all(r.attrs["chosen"] >= 1 for r in enumerations)
    instants = [r for r in records
                if r.name == "osteal.group_change"]
    assert instants, "group transitions must leave instant markers"
    assert all(r.kind == "instant" for r in instants)


def test_gum_metrics_populated(traced_gum):
    result, _, metrics = traced_gum
    snap = metrics.snapshot()
    assert snap["engine.iterations"]["total"] == result.num_iterations
    assert "costmodel.rmsre_online" in snap
    assert "hubcache.num_hubs" in snap
    stolen = sum(r.stolen_edges for r in result.iterations)
    assert snap.get("steal.edges_total", {"total": 0})["total"] == stolen
    if stolen:
        # the per-pair breakdown must account for every stolen edge
        assert snap["steal.edges_by_pair"]["total"] == stolen
    bucket_series = snap["engine.bucket_seconds"]["series"]
    assert set(bucket_series) == {
        "bucket=compute", "bucket=communication", "bucket=serialization",
        "bucket=sync", "bucket=overhead",
    }
    assert snap["engine.bucket_seconds"]["total"] == pytest.approx(
        result.total_seconds
    )


def test_live_spans_match_offline_replay(traced_gum):
    result, records, _ = traced_gum
    live = [(r.name, r.track, r.virtual_start, r.virtual_dur)
            for r in records
            if r.cat in ("superstep", "worker")]
    offline = [(r.name, r.track, r.virtual_start, r.virtual_dur)
               for r in result_to_spans(result)
               if r.cat in ("superstep", "worker")]
    assert live == offline


def test_tracing_does_not_change_virtual_time(
    skewed_graph, skewed_partition, source
):
    """The acceptance bound: tracing on/off moves total_ms by < 1%."""
    def run(**obs):
        engine = GumEngine(dgx1(8),
                           config=GumConfig(cost_model="oracle"), **obs)
        return engine.run(skewed_graph, skewed_partition, "bfs",
                          source=source)

    plain = run()
    traced = run(tracer=Tracer(sinks=[InMemorySink()]),
                 metrics=MetricsRegistry())
    assert traced.total_ms == pytest.approx(plain.total_ms, rel=1e-9)
    assert abs(traced.total_ms - plain.total_ms) < 0.01 * plain.total_ms


def test_null_observers_by_default(skewed_graph, skewed_partition, source):
    engine = GumEngine(dgx1(8), config=GumConfig(cost_model="oracle"))
    assert engine.tracer.enabled is False
    assert engine.metrics.enabled is False
    engine.run(skewed_graph, skewed_partition, "bfs", source=source)


def test_gunrock_and_groute_emit_supersteps(
    skewed_graph, skewed_partition, source
):
    for factory in (
        lambda t, m: GunrockEngine(dgx1(8), tracer=t, metrics=m),
        lambda t, m: GrouteEngine(dgx1(8), tracer=t, metrics=m),
    ):
        sink = InMemorySink()
        metrics = MetricsRegistry()
        engine = factory(Tracer(sinks=[sink]), metrics)
        result = engine.run(skewed_graph, skewed_partition, "bfs",
                            source=source)
        supersteps = [r for r in sink.records if r.name == "superstep"]
        assert len(supersteps) == result.num_iterations
        run_spans = [r for r in sink.records if r.name == "run"]
        assert len(run_spans) == 1
        assert run_spans[0].attrs["virtual_total_ms"] == pytest.approx(
            result.total_ms
        )
        assert metrics.counter("engine.iterations").total() == \
            result.num_iterations
