"""The decision ledger: per-steal explainability and prediction audit.

The contract under test, end to end:

* recording is deterministic — two runs of the same workload produce
  byte-identical ledgers, and recording never perturbs virtual time;
* every arbitrator decision yields exactly one entry (cache hits are
  flagged ``cached``, never skipped; chaos evictions become
  attributable fault records, not gaps);
* the sealed online RMSRE is reconstructible bit-identically from the
  archived entries alone — the acceptance bar for ``repro explain``;
* ``export_samples`` round-trips through the cost-model training API.
"""

import json

import numpy as np
import pytest

import repro
from repro.chaos import ChaosController, ChaosScenario, FaultSpec
from repro.core import GumConfig
from repro.core.costmodel import MODEL_FAMILIES, OnlineRMSRE
from repro.graph.features import FrontierFeatures
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    LedgerError,
    explain_lines,
    reconstruct_rmsre,
)
from repro.obs.slo import slo_indicators
from repro.cli import result_summary


def run_bfs(graph, source, config=None, chaos=None, **kwargs):
    return repro.run(graph, "bfs", num_gpus=4, source=source,
                     gum_config=config, chaos=chaos, **kwargs)


@pytest.fixture(scope="module")
def recorded(skewed_graph, source):
    return run_bfs(skewed_graph, source)


# ---------------------------------------------------------------------------
# recording basics


def test_gum_runs_carry_a_ledger(recorded):
    ledger = recorded.ledger
    assert ledger is not None
    assert len(ledger.entries) == recorded.num_iterations
    assert ledger.samples > 0
    # every entry got its measured cost back-filled
    assert all(e["measured"] is not None for e in ledger.entries)


def test_ledger_can_be_disabled(skewed_graph, source):
    result = run_bfs(skewed_graph, source,
                     config=GumConfig(ledger=False))
    assert result.ledger is None


def test_baselines_have_no_ledger(skewed_graph, source):
    result = run_bfs(skewed_graph, source, engine="bsp")
    assert result.ledger is None


def test_recording_never_touches_virtual_time(skewed_graph, source):
    with_ledger = run_bfs(skewed_graph, source)
    without = run_bfs(skewed_graph, source,
                      config=GumConfig(ledger=False))
    assert with_ledger.total_seconds == without.total_seconds
    assert with_ledger.num_iterations == without.num_iterations
    assert np.array_equal(with_ledger.values, without.values)


def test_repeated_runs_yield_identical_ledgers(skewed_graph, source):
    first = run_bfs(skewed_graph, source).ledger
    second = run_bfs(skewed_graph, source).ledger
    assert json.dumps(first.as_dict(), sort_keys=True) == \
        json.dumps(second.as_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# RMSRE reconstruction (the acceptance bar)


def test_final_rmsre_reconstructs_bit_identically(recorded):
    ledger = recorded.ledger
    assert ledger.final_rmsre is not None
    assert reconstruct_rmsre(ledger.entries) == ledger.final_rmsre


def test_rmsre_survives_json_round_trip(recorded):
    payload = json.loads(
        json.dumps(recorded.ledger.as_dict(), sort_keys=True)
    )
    assert payload["schema"] == LEDGER_SCHEMA
    revived = Ledger.from_dict(payload)
    assert reconstruct_rmsre(revived.entries) == \
        recorded.ledger.final_rmsre
    assert revived.summary() == recorded.ledger.summary()


def test_from_dict_rejects_unknown_schema(recorded):
    payload = recorded.ledger.as_dict()
    payload["schema"] = "repro-ledger/999"
    with pytest.raises(LedgerError):
        Ledger.from_dict(payload)


# ---------------------------------------------------------------------------
# amortization: cache hits are recorded, never skipped


@pytest.fixture(scope="module")
def sssp_pair(skewed_weighted, source):
    amortized = repro.run(skewed_weighted, "sssp", num_gpus=4,
                          source=source)
    exact = repro.run(skewed_weighted, "sssp", num_gpus=4,
                      source=source, gum_config=GumConfig(amortize=False))
    return amortized, exact


def test_amortized_run_records_every_decision(sssp_pair):
    amortized, exact = sssp_pair
    assert len(amortized.ledger.entries) == amortized.num_iterations
    assert len(exact.ledger.entries) == exact.num_iterations


def test_cache_hits_are_flagged_cached(sssp_pair):
    amortized, exact = sssp_pair
    hits = int(amortized.decision_stats.get("hits", 0))
    assert amortized.ledger.cache_status_counts()["cached"] == hits
    # exact mode never serves from the plan cache
    off = exact.ledger.cache_status_counts()
    assert off["cached"] == 0 and off["warm"] == 0


# ---------------------------------------------------------------------------
# chaos: evictions become attributable entries, not gaps


def test_chaos_run_ledger_has_no_gaps(skewed_graph, source):
    chaos = ChaosController(ChaosScenario(
        faults=(FaultSpec("kill_worker", 1, {"worker": 2}),), seed=0,
    ))
    result = run_bfs(skewed_graph, source,
                     config=GumConfig(cost_model="oracle"), chaos=chaos)
    ledger = result.ledger
    assert len(ledger.entries) == result.num_iterations
    recorded_iters = [e["iteration"] for e in ledger.entries]
    assert recorded_iters == [r.iteration for r in result.iterations]
    faults = [f for f in ledger.faults if f["kind"] == "kill_worker"]
    assert len(faults) == 1
    assert faults[0]["worker"] == 2
    assert faults[0]["heir"] is not None
    # post-fault decisions never assign work to the dead GPU
    fault_iter = faults[0]["iteration"]
    for entry in ledger.entries:
        if entry["iteration"] >= fault_iter:
            assert all(s["worker"] != 2 for s in entry["samples"])


def test_chaos_ledger_is_deterministic(skewed_graph, source):
    def go():
        chaos = ChaosController(ChaosScenario(
            faults=(FaultSpec("kill_worker", 1, {"worker": 2}),),
            seed=0,
        ))
        return run_bfs(skewed_graph, source,
                       config=GumConfig(cost_model="oracle"),
                       chaos=chaos).ledger
    assert json.dumps(go().as_dict(), sort_keys=True) == \
        json.dumps(go().as_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# skipped-sample accounting (OnlineRMSRE regression)


def test_online_rmsre_counts_skipped_samples():
    tracker = OnlineRMSRE()
    tracker.update(1.0, 2.0)
    tracker.update(1.0, 0.0)
    tracker.update(1.0, -3.0)
    assert tracker.count == 1
    assert tracker.skipped == 2
    assert "skipped=2" in repr(tracker)


def test_ledger_counts_skipped_samples():
    features = FrontierFeatures(
        avg_in_degree=2.0, avg_out_degree=2.5, in_degree_range=1.0,
        out_degree_range=1.0, gini=0.1, entropy=0.9, size=2,
        total_edges=5,
    )
    ledger = Ledger()
    ledger.begin(0, [5, 0])
    ledger.record_sample(0, 0, features, 1e-6, 2e-6)
    ledger.record_sample(1, 1, features, 1e-6, 0.0)
    ledger.commit(group_size=2, active_workers=[0, 1],
                  fsteal_applied=False, stolen_edges=0,
                  migrated_vertices=0)
    assert ledger.samples == 1
    assert ledger.skipped_samples == 1
    assert ledger.entries[0]["skipped"] == 1
    # seal() cross-checks the arbitrator's own skip counter
    with pytest.raises(LedgerError):
        ledger.seal(None, skipped=7)


# ---------------------------------------------------------------------------
# training-pair export


def test_export_samples_round_trips_through_fit(recorded):
    samples = recorded.ledger.export_samples()
    assert samples.features.shape == (recorded.ledger.samples, 6)
    assert (samples.costs > 0).all()
    model = MODEL_FAMILIES["polynomial"]()
    model.fit(samples.features, samples.costs)


def test_export_samples_carry_iteration_and_gpu(recorded):
    ledger = recorded.ledger
    samples = ledger.export_samples()
    assert samples.iterations.shape == samples.costs.shape
    assert samples.gpus.shape == samples.costs.shape
    # rebuild the same provenance by walking entries in feed order
    expected = [
        (entry["iteration"], sample["worker"])
        for entry in ledger.entries
        for sample in entry["samples"]
        if sample["actual"] > 0
    ]
    assert list(zip(samples.iterations.tolist(),
                    samples.gpus.tolist())) == expected


def test_export_samples_raises_when_empty():
    with pytest.raises(LedgerError):
        Ledger().export_samples()


# ---------------------------------------------------------------------------
# surfaces: summary, SLO indicators, explain


def test_result_summary_carries_ledger_block(recorded):
    summary = result_summary(recorded)
    led = summary["ledger"]
    assert led["entries"] == recorded.num_iterations
    assert led["final_rmsre"] == recorded.ledger.final_rmsre
    json.dumps(summary)  # must stay strictly JSON-serializable


def test_slo_indicators_expose_drift(recorded):
    summary = result_summary(recorded)
    indicators = slo_indicators(summary, recorded.timeseries())
    assert indicators["max_model_drift"] == \
        recorded.ledger.summary()["max_model_drift"]
    assert indicators["max_decision_error_p99"] == \
        recorded.ledger.summary()["decision_error_p99"]
    # pre-ledger manifests degrade to None, not KeyError
    bare = slo_indicators({"stall_fraction": 0.1}, {})
    assert bare["max_model_drift"] is None
    assert bare["max_decision_error_p99"] is None


def test_explain_reports_bit_identical_rmsre(recorded):
    lines = explain_lines(recorded.ledger)
    text = "\n".join(lines)
    assert "bit-identical" in text
    assert "MISMATCH" not in text
    assert f"{len(recorded.ledger.entries)} decisions" in text


def test_explain_iteration_drilldown(recorded):
    target = recorded.ledger.entries[0]["iteration"]
    text = "\n".join(explain_lines(recorded.ledger, iteration=target))
    assert "workloads" in text
    assert "fragment" in text
    with pytest.raises(LedgerError):
        explain_lines(recorded.ledger, iteration=10**9)


# ---------------------------------------------------------------------------
# registry: archived ledgers


def test_registry_round_trips_ledger(tmp_path, recorded):
    from repro.runs import RunRegistry, workload_fingerprint

    registry = RunRegistry(tmp_path)
    run_id = registry.record_result(
        recorded,
        workload_fingerprint("gum", "bfs", "skewed", 4),
    )
    payload = registry.load_ledger(run_id)
    assert payload["schema"] == LEDGER_SCHEMA
    revived = Ledger.from_dict(payload)
    assert reconstruct_rmsre(revived.entries) == \
        recorded.ledger.final_rmsre
    manifest = registry.load_manifest(run_id)
    assert "ledger.json" in manifest["files"]


def test_registry_missing_ledger_is_an_error(tmp_path, skewed_graph,
                                             source):
    from repro.errors import RunRegistryError
    from repro.runs import RunRegistry, workload_fingerprint

    registry = RunRegistry(tmp_path)
    result = run_bfs(skewed_graph, source, engine="bsp")
    run_id = registry.record_result(
        result, workload_fingerprint("bsp", "bfs", "skewed", 4),
    )
    assert "ledger.json" not in registry.load_manifest(run_id)["files"]
    with pytest.raises(RunRegistryError):
        registry.load_ledger(run_id)
