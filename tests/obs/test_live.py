"""Live streaming: protocol shape, flush contract, live/post-hoc parity.

The pinned invariant: the spans a :class:`StreamingSink` puts on the
wire during a run are exactly the spans a post-hoc
:func:`result_to_spans` replay produces for the same run
(order-insensitive) — including chaos fault markers — so live
consumers and offline analytics can never disagree about what a run
did.
"""

import json
import os

import pytest

import repro
from repro.chaos import ChaosController, ChaosScenario, FaultSpec
from repro.core import GumConfig
from repro.errors import ReproError
from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    SpanRecord,
    StreamingSink,
    Tracer,
    read_stream_events,
    result_to_spans,
)
from repro.obs.live import STREAM_FORMAT, STREAM_VERSION, iter_stream_lines


def _span(name="superstep", iteration=0, **attrs):
    return SpanRecord(
        name=name, track="coordinator", cat="engine",
        virtual_start=0.001 * iteration, virtual_dur=0.001,
        attrs={"iteration": iteration, **attrs},
    )


# ----------------------------------------------------------------------
# Protocol shape
# ----------------------------------------------------------------------
def test_stream_header_and_end(tmp_path):
    path = tmp_path / "run.stream"
    sink = StreamingSink(path, meta={"engine": "gum", "graph": "TX"})
    sink.emit(_span(iteration=0))
    sink.close()
    events = read_stream_events(path)
    header = events[0]
    assert header["format"] == STREAM_FORMAT
    assert header["version"] == STREAM_VERSION
    assert header["engine"] == "gum"
    assert events[-1] == {"event": "end", "spans": 1}


def test_span_events_preserve_record_kind(tmp_path):
    """The envelope key is ``event``; the record's own ``kind`` field
    (span vs instant) must survive untouched."""
    path = tmp_path / "run.stream"
    sink = StreamingSink(path)
    sink.emit(_span())
    instant = SpanRecord(name="chaos.kill_worker", track="coordinator",
                         kind="instant", cat="chaos",
                         virtual_start=0.0, virtual_dur=0.0)
    sink.emit(instant)
    sink.close()
    spans = [e for e in read_stream_events(path) if e.get("event") == "span"]
    assert [s["kind"] for s in spans] == ["span", "instant"]


def test_periodic_snapshots_are_light_final_is_full(tmp_path):
    registry = MetricsRegistry()
    registry.timeseries("engine.wall_ms_series").append(0.5, index=0)
    path = tmp_path / "run.stream"
    sink = StreamingSink(path, metrics=registry, snapshot_every=2)
    for i in range(4):
        registry.counter("engine.iterations").inc()
        sink.emit(_span(iteration=i))
    sink.close()
    snapshots = [e for e in read_stream_events(path)
                 if e.get("event") == "metrics"]
    # two periodic (after supersteps 2 and 4) + one final
    assert len(snapshots) == 3
    periodic, final = snapshots[0], snapshots[-1]
    series = periodic["snapshot"]["engine.wall_ms_series"]
    assert "values" not in series and "index" not in series
    assert series["count"] == 1 and series["last"] == 0.5
    assert final["snapshot"]["engine.wall_ms_series"]["values"] == [0.5]


def test_instants_flush_immediately_spans_batch(tmp_path):
    """Chaos markers must hit the wire at once; ordinary span lines may
    wait for the heartbeat."""
    path = tmp_path / "run.stream"
    sink = StreamingSink(path, snapshot_every=10)
    sink.emit(_span(name="busy", iteration=0))
    assert list(iter_stream_lines(path)) == [
        {"format": STREAM_FORMAT, "version": STREAM_VERSION}
    ]  # header flushed, busy line still buffered
    sink.emit(SpanRecord(name="chaos.kill_worker", kind="instant",
                         cat="chaos", virtual_start=0.0, virtual_dur=0.0))
    on_wire = [e.get("name") for e in iter_stream_lines(path)
               if e.get("event") == "span"]
    assert on_wire == ["busy", "chaos.kill_worker"]
    sink.close()


def test_snapshot_every_zero_disables_periodic(tmp_path):
    registry = MetricsRegistry()
    path = tmp_path / "run.stream"
    sink = StreamingSink(path, metrics=registry, snapshot_every=0)
    for i in range(25):
        sink.emit(_span(iteration=i))
    sink.close()
    snapshots = [e for e in read_stream_events(path)
                 if e.get("event") == "metrics"]
    assert len(snapshots) == 1  # only the final full snapshot


# ----------------------------------------------------------------------
# Targets and reader edge cases
# ----------------------------------------------------------------------
def test_fd_target(tmp_path):
    path = tmp_path / "fd.stream"
    with open(path, "w") as handle:
        sink = StreamingSink(f"fd://{handle.fileno()}")
        sink.emit(_span())
        sink.close()
    events = read_stream_events(path)
    assert [e.get("event") for e in events[1:]] == ["span", "end"]


def test_bad_fd_target_raises():
    with pytest.raises(ReproError, match="fd://"):
        StreamingSink("fd://notanumber")


def test_unconnectable_socket_target_raises(tmp_path):
    with pytest.raises(ReproError, match="socket"):
        StreamingSink(f"unix://{tmp_path}/no-such.sock")


def test_unwritable_path_raises(tmp_path):
    target = tmp_path / "dir-in-the-way"
    target.mkdir()
    with pytest.raises(ReproError, match="cannot open stream file"):
        StreamingSink(target)


def test_reader_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "run.stream"
    sink = StreamingSink(path)
    sink.emit(_span())
    sink.close()
    text = path.read_text()
    path.write_text(text + '{"event":"span","name":"half')  # no newline
    events = list(iter_stream_lines(path))
    assert [e.get("event") for e in events[1:]] == ["span", "end"]


def test_reader_rejects_malformed_complete_line(tmp_path):
    path = tmp_path / "run.stream"
    path.write_text('{"format":"repro-live","version":1}\nnot json\n')
    with pytest.raises(ReproError, match="malformed stream line"):
        list(iter_stream_lines(path))


def test_reader_rejects_wrong_format(tmp_path):
    path = tmp_path / "run.stream"
    path.write_text('{"format":"something-else"}\n')
    with pytest.raises(ReproError, match="not a repro-live stream"):
        read_stream_events(path)


def test_reader_rejects_empty_stream(tmp_path):
    path = tmp_path / "run.stream"
    path.write_text("")
    with pytest.raises(ReproError, match="empty stream"):
        read_stream_events(path)


# ----------------------------------------------------------------------
# Live vs post-hoc parity (the tentpole invariant)
# ----------------------------------------------------------------------
def _virtual_span_set(records):
    """Order-insensitive view of the virtual-clock spans."""
    return sorted(
        (json.dumps(r.as_dict(), sort_keys=True) for r in records
         if r.virtual_start is not None),
    )


def _streamed_span_set(path):
    spans = []
    for event in read_stream_events(path):
        if event.get("event") != "span":
            continue
        event = {k: v for k, v in event.items() if k != "event"}
        if "virtual_start" in event:
            spans.append(json.dumps(event, sort_keys=True))
    return sorted(spans)


def _traced_run(tmp_path, skewed_graph, source, chaos=None):
    metrics = MetricsRegistry()
    memory = InMemorySink()
    path = tmp_path / "run.stream"
    stream = StreamingSink(path, metrics=metrics)
    tracer = Tracer(sinks=[memory, stream])
    result = repro.run(
        skewed_graph, "bfs", num_gpus=4, source=source,
        gum_config=GumConfig(cost_model="oracle"),
        tracer=tracer, metrics=metrics, chaos=chaos,
    )
    memory.close()
    stream.close()
    return result, memory, path


def test_live_stream_matches_post_hoc_replay(tmp_path, skewed_graph,
                                             source):
    result, memory, path = _traced_run(tmp_path, skewed_graph, source)
    live = _virtual_span_set(memory.records)
    streamed = _streamed_span_set(path)
    post_hoc = _virtual_span_set(result_to_spans(result))
    assert streamed == live
    assert post_hoc == live
    assert len(live) > 0


def test_live_stream_matches_post_hoc_replay_with_chaos(
        tmp_path, skewed_graph, source):
    chaos = ChaosController(ChaosScenario(
        faults=(FaultSpec("kill_worker", 1, {"worker": 2}),),
        seed=0,
    ))
    result, memory, path = _traced_run(tmp_path, skewed_graph, source,
                                       chaos=chaos)
    live = _virtual_span_set(memory.records)
    streamed = _streamed_span_set(path)
    post_hoc = _virtual_span_set(result_to_spans(result))
    assert streamed == live
    assert post_hoc == live
    # the fault marker is on the wire, live and post-hoc alike
    assert any('"chaos.kill_worker"' in span for span in streamed)
    assert any('"chaos.kill_worker"' in span for span in post_hoc)


def test_streaming_leaves_virtual_clock_untouched(tmp_path, skewed_graph,
                                                  source):
    silent = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                       gum_config=GumConfig(cost_model="oracle"))
    streamed, _, _ = _traced_run(tmp_path, skewed_graph, source)
    assert streamed.total_ms == silent.total_ms
    assert streamed.timeseries() == silent.timeseries()
