"""Unit tests for the metrics registry and its instruments."""

import json

import pytest

from repro.obs import MetricsRegistry, NULL_METRICS


def test_counter_labels_and_total():
    registry = MetricsRegistry()
    counter = registry.counter("steal.edges_by_pair", "per (home, worker)")
    counter.inc(10, home=0, worker=3)
    counter.inc(5, home=0, worker=3)
    counter.inc(2, home=1, worker=0)
    counter.inc()  # unlabelled series
    assert counter.value(home=0, worker=3) == 15
    assert counter.value(home=1, worker=0) == 2
    assert counter.value() == 1
    assert counter.total() == 18
    snap = counter.snapshot()
    assert snap["type"] == "counter"
    assert snap["series"]["home=0,worker=3"] == 15


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("osteal.group_size")
    assert gauge.value() is None
    gauge.set(8)
    gauge.set(2)
    assert gauge.value() == 2.0
    assert gauge.snapshot() == {"type": "gauge", "value": 2.0}


def test_histogram_stats_and_decade_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("fsteal.solve_seconds")
    for value in (0.002, 0.004, 0.02, 3.0, 0.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.min == 0.0
    assert hist.max == 3.0
    assert hist.mean == pytest.approx(3.026 / 5)
    snap = hist.snapshot()
    assert snap["decade_buckets"]["1e-3"] == 2
    assert snap["decade_buckets"]["1e-2"] == 1
    assert snap["decade_buckets"]["1e0"] == 1
    assert snap["decade_buckets"]["0"] == 1


def test_registry_get_or_create_and_kind_clash():
    registry = MetricsRegistry()
    first = registry.counter("x")
    assert registry.counter("x") is first
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("x")
    assert registry.names() == ["x"]


def test_registry_snapshot_is_json_friendly():
    registry = MetricsRegistry()
    registry.counter("a").inc(2, k="v")
    registry.gauge("b").set(1.5)
    registry.histogram("c").observe(0.5)
    snap = registry.snapshot()
    assert set(snap) == {"a", "b", "c"}
    json.dumps(snap)


def test_null_metrics_is_inert():
    assert NULL_METRICS.enabled is False
    counter = NULL_METRICS.counter("anything")
    counter.inc(100, label="x")
    assert counter.total() == 0.0
    NULL_METRICS.gauge("g").set(5)
    NULL_METRICS.histogram("h").observe(1.0)
    assert NULL_METRICS.snapshot() == {}


def test_timeseries_append_and_snapshot():
    registry = MetricsRegistry()
    series = registry.timeseries("engine.wall_ms_series", "per-superstep")
    series.append(1.5)
    series.append(2.5, index=3)
    series.append(4)
    assert len(series) == 3
    assert series.values() == [1.5, 2.5, 4.0]
    assert series.index() == [0, 3, 4]  # explicit index advances it
    assert series.last() == 4.0
    snap = series.snapshot()
    assert snap == {"type": "timeseries", "count": 3, "last": 4.0,
                    "index": [0, 3, 4], "values": [1.5, 2.5, 4.0]}


def test_timeseries_empty_snapshot():
    series = MetricsRegistry().timeseries("s")
    assert series.last() is None
    assert series.snapshot() == {"type": "timeseries", "count": 0,
                                 "last": None, "index": [], "values": []}


def test_null_timeseries_is_inert():
    series = NULL_METRICS.timeseries("anything")
    series.append(5.0, index=2)
    assert len(series) == 0
    assert series.values() == []
    assert series.last() is None


def test_snapshot_is_json_stable():
    """Identical metric activity must serialize to identical bytes.

    The run registry diffs archived snapshots, so key order and scalar
    types cannot depend on insertion order or numpy input types.
    """
    import numpy as np

    def build(shuffle):
        registry = MetricsRegistry()
        names = ["z.counter", "a.gauge", "m.histogram", "t.series"]
        if shuffle:
            names = list(reversed(names))
        for name in names:
            if name.endswith("counter"):
                registry.counter(name).inc(np.int64(3), gpu=np.int64(1))
            elif name.endswith("gauge"):
                registry.gauge(name).set(np.float32(2.0))
            elif name.endswith("histogram"):
                registry.histogram(name).observe(np.float64(0.25))
            else:
                registry.timeseries(name).append(np.float64(1.0))
        return registry.snapshot()

    first = json.dumps(build(False), sort_keys=True)
    second = json.dumps(build(True), sort_keys=True)
    assert first == second
    # every leaf is a plain python scalar, not a numpy type
    snap = build(False)
    assert type(snap["z.counter"]["total"]) is float
    assert type(snap["z.counter"]["series"]["gpu=1"]) is float
    assert type(snap["a.gauge"]["value"]) is float
    assert type(snap["m.histogram"]["count"]) is int
    assert type(snap["m.histogram"]["sum"]) is float
    assert type(snap["t.series"]["values"][0]) is float
    assert type(snap["t.series"]["index"][0]) is int


def test_capture_render_light_matches_snapshot():
    """The streaming heartbeat's split capture/render path must format
    byte-identically to ``snapshot(light=True)`` — the engine captures
    state at the beat, the writer thread formats it later."""
    from repro.obs.metrics import capture_light, render_light

    registry = MetricsRegistry()
    registry.counter("engine.iterations").inc()
    registry.counter("engine.bucket_seconds").inc(0.5, bucket="compute")
    registry.counter("engine.bucket_seconds").inc(0.25, bucket="sync")
    registry.gauge("osteal.group_size").set(3)
    registry.gauge("never.set")
    hist = registry.histogram("engine.iteration_wall_seconds")
    for value in (0.001, 0.01, 0.1, 0.0):
        hist.observe(value)
    registry.histogram("empty.histogram")
    series = registry.timeseries("engine.wall_ms_series")
    series.append(1.5, index=0)
    series.append(2.5, index=4)
    registry.timeseries("empty.series")

    rendered = render_light(capture_light(registry))
    expected = registry.snapshot(light=True)
    assert json.dumps(rendered, sort_keys=True) == \
        json.dumps(expected, sort_keys=True)
    assert rendered == expected
