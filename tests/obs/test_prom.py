"""Prometheus text exposition: mapping, sanitisation, stability."""

import pytest

from repro.errors import ReproError
from repro.obs import MetricsRegistry, prom_text, write_prom
from repro.obs.prom import prom_name


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("engine.iterations").inc(3)
    reg.counter("steal.edges").inc(10, gpu=0)
    reg.counter("steal.edges").inc(20, gpu=1)
    reg.gauge("osteal.group_size").set(6)
    for value in (0.1, 0.2, 0.3, 0.4):
        reg.histogram("engine.wall_ms").observe(value)
    reg.timeseries("engine.wall_ms_series").append(0.5, index=0)
    reg.timeseries("engine.wall_ms_series").append(0.7, index=1)
    return reg


def test_name_sanitisation():
    assert prom_name("engine.wall_ms") == "repro_engine_wall_ms"
    assert prom_name("a b/c", prefix="") == "a_b_c"
    assert prom_name("9lives", prefix="") == "_9lives"
    assert prom_name("x", prefix="custom") == "custom_x"


def test_counter_mapping(registry):
    text = prom_text(registry.snapshot())
    assert "# TYPE repro_engine_iterations counter" in text
    assert "repro_engine_iterations 3" in text
    # labelled series render one sample per label set
    assert 'repro_steal_edges{gpu="0"} 10' in text
    assert 'repro_steal_edges{gpu="1"} 20' in text


def test_gauge_mapping(registry):
    text = prom_text(registry.snapshot())
    assert "# TYPE repro_osteal_group_size gauge" in text
    assert "repro_osteal_group_size 6" in text


def test_unset_gauge_is_skipped():
    reg = MetricsRegistry()
    reg.gauge("never.set")
    assert "never_set" not in prom_text(reg.snapshot())


def test_histogram_maps_to_summary(registry):
    text = prom_text(registry.snapshot())
    assert "# TYPE repro_engine_wall_ms summary" in text
    assert 'repro_engine_wall_ms{quantile="0.5"}' in text
    assert 'repro_engine_wall_ms{quantile="0.99"}' in text
    assert "repro_engine_wall_ms_count 4" in text
    assert "repro_engine_wall_ms_sum 1" in text
    assert "repro_engine_wall_ms_min 0.1" in text
    assert "repro_engine_wall_ms_max 0.4" in text


def test_pre_quantile_snapshot_still_renders():
    """Archived snapshots recorded before p50/p90/p99 existed must
    render without quantile samples rather than crash."""
    legacy = {"engine.wall_ms": {
        "type": "histogram", "count": 4, "sum": 1.0,
        "mean": 0.25, "min": 0.1, "max": 0.4,
        "decade_buckets": {"1e-1": 4},
    }}
    text = prom_text(legacy)
    assert "quantile=" not in text
    assert "repro_engine_wall_ms_count 4" in text


def test_timeseries_maps_to_last_gauge(registry):
    text = prom_text(registry.snapshot())
    assert "repro_engine_wall_ms_series_last 0.7" in text
    assert "repro_engine_wall_ms_series_count 2" in text


def test_output_is_deterministic(registry):
    snapshot = registry.snapshot()
    assert prom_text(snapshot) == prom_text(snapshot)
    assert prom_text(snapshot).endswith("\n")


def test_empty_snapshot_renders_empty():
    assert prom_text({}) == ""


def test_unknown_instrument_type_skipped():
    text = prom_text({"future.metric": {"type": "exotic", "value": 1}})
    assert text == ""


def test_write_prom(tmp_path, registry):
    path = tmp_path / "nested" / "metrics.prom"
    written = write_prom(path, registry.snapshot())
    assert written == path
    assert "repro_engine_iterations 3" in path.read_text()


def test_write_prom_unwritable(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory")
    with pytest.raises(ReproError, match="cannot write Prometheus"):
        write_prom(target / "metrics.prom", {})
