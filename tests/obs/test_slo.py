"""SLO rules engine: config validation, indicators, evaluation."""

import math

import pytest

from repro.errors import ReproError, SloConfigError
from repro.obs.slo import (
    MIN_HISTORY,
    SLO_SCHEMA,
    evaluate,
    ewma_zscores,
    load_policy,
    policy_from_dict,
    recovery_iterations,
    slo_indicators,
)


def policy(*rules):
    return policy_from_dict({"schema": SLO_SCHEMA, "rules": list(rules)})


GREEN_SUMMARY = {
    "total_ms": 26.0,
    "stall_fraction": 0.004,
    "per_gpu_utilization": [0.99, 0.0, 0.0, 1.0],
    "obs_overhead_pct": 1.2,
}

GREEN_TIMESERIES = {
    "iteration": list(range(20)),
    "wall_ms": [0.2] * 19 + [0.5],
}


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_rejects_wrong_schema():
    with pytest.raises(SloConfigError, match="unsupported schema"):
        policy_from_dict({"schema": "repro-slo/99", "rules": []})


def test_rejects_empty_rules():
    with pytest.raises(SloConfigError, match="non-empty list"):
        policy_from_dict({"schema": SLO_SCHEMA, "rules": []})


def test_rejects_unknown_rule_keys():
    with pytest.raises(SloConfigError, match="unknown rule key"):
        policy({"metric": "total_ms", "max": 1.0, "treshold": 2})


def test_rejects_metric_and_series_together():
    with pytest.raises(SloConfigError, match="exactly one"):
        policy({"metric": "total_ms", "series": "wall_ms",
                "zscore_max": 3.0})


def test_bound_rule_needs_a_bound():
    with pytest.raises(SloConfigError, match="needs 'max'"):
        policy({"metric": "total_ms"})


def test_series_rule_needs_zscore():
    with pytest.raises(SloConfigError, match="needs 'zscore_max'"):
        policy({"series": "wall_ms"})


def test_rejects_bad_alpha():
    with pytest.raises(SloConfigError, match="ewma_alpha"):
        policy({"series": "wall_ms", "zscore_max": 3.0,
                "ewma_alpha": 1.5})


def test_slo_config_error_is_a_repro_error():
    assert issubclass(SloConfigError, ReproError)


def test_load_policy_json(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(
        '{"schema": "repro-slo/1", '
        '"rules": [{"metric": "total_ms", "max": 30}]}'
    )
    loaded = load_policy(path)
    assert len(loaded.rules) == 1
    assert loaded.rules[0].max == 30.0
    assert loaded.source == str(path)


def test_load_policy_yaml(tmp_path):
    yaml = pytest.importorskip("yaml")
    del yaml
    path = tmp_path / "rules.yaml"
    path.write_text(
        "schema: repro-slo/1\n"
        "rules:\n"
        "  - metric: total_ms\n"
        "    max: 30\n"
        "  - series: wall_ms\n"
        "    zscore_max: 6\n"
    )
    loaded = load_policy(path)
    assert [r.kind for r in loaded.rules] == ["bound", "series"]


def test_load_policy_missing_file(tmp_path):
    with pytest.raises(SloConfigError, match="cannot read"):
        load_policy(tmp_path / "absent.yaml")


def test_load_policy_malformed_json(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text("{nope")
    with pytest.raises(SloConfigError, match="malformed JSON"):
        load_policy(path)


# ----------------------------------------------------------------------
# indicators
# ----------------------------------------------------------------------
def test_indicators_quantiles_and_participating_gpus():
    indicators = slo_indicators(GREEN_SUMMARY, GREEN_TIMESERIES)
    assert indicators["p50_iteration_ms"] == pytest.approx(0.2)
    assert indicators["max_iteration_ms"] == pytest.approx(0.5)
    # idled-by-design GPUs (utilization 0 under OSteal) are excluded
    assert indicators["min_gpu_utilization"] == pytest.approx(0.99)
    assert indicators["max_stall_fraction"] == pytest.approx(0.004)
    assert indicators["obs_overhead_pct"] == pytest.approx(1.2)
    assert "chaos_recovery_iterations" not in indicators


def test_indicators_without_timeseries():
    indicators = slo_indicators(GREEN_SUMMARY)
    assert indicators["p99_iteration_ms"] is None
    assert indicators["min_gpu_utilization"] == pytest.approx(0.99)


def test_indicators_chaos_recovery():
    summary = dict(GREEN_SUMMARY)
    summary["chaos"] = {"events": [{"kind": "kill_worker",
                                    "iteration": 5}]}
    wall = [0.2] * 5 + [1.0, 0.9, 0.25] + [0.2] * 12
    timeseries = {"iteration": list(range(20)), "wall_ms": wall}
    indicators = slo_indicators(summary, timeseries)
    # baseline ewma 0.2, tolerance 1.5x => recovered at offset 2 (0.25)
    assert indicators["chaos_recovery_iterations"] == 2


def test_recovery_never_recovers_counts_remaining():
    wall = [0.2] * 5 + [1.0] * 5
    assert recovery_iterations(wall, [5]) == 5


def test_recovery_no_faults_is_none():
    assert recovery_iterations([0.2, 0.3], []) is None
    assert recovery_iterations([], [1]) is None


# ----------------------------------------------------------------------
# ewma z-scores
# ----------------------------------------------------------------------
def test_ewma_zscores_warmup_and_spike():
    values = [1.0] * 10 + [50.0]
    scores = ewma_zscores(values, alpha=0.3, warmup=5)
    assert scores[:5] == [None] * 5
    finite = [s for s in scores if s is not None]
    assert all(abs(s) < 1.0 for s in finite[:-1])
    assert scores[-1] is not None and scores[-1] > 3.0


def test_ewma_zscores_uses_only_past_samples():
    # the spike's own value must not deflate its z-score
    calm = ewma_zscores([1.0] * 20, alpha=0.3, warmup=3)
    assert all(s == 0.0 for s in calm if s is not None)


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def test_bound_rules_pass_and_fail():
    report = evaluate(
        policy({"metric": "total_ms", "max": 30.0},
               {"metric": "min_gpu_utilization", "min": 0.9}),
        GREEN_SUMMARY, GREEN_TIMESERIES,
    )
    assert [o.status for o in report.outcomes] == ["PASS", "PASS"]
    assert report.ok and report.exit_code == 0

    tightened = evaluate(
        policy({"metric": "total_ms", "max": 10.0}),
        GREEN_SUMMARY, GREEN_TIMESERIES,
    )
    assert [o.status for o in tightened.outcomes] == ["FAIL"]
    assert tightened.exit_code == 1
    assert "> max 10" in tightened.outcomes[0].message


def test_bound_rule_resolves_dotted_summary_path():
    summary = dict(GREEN_SUMMARY)
    summary["breakdown_ms"] = {"communication": 4.0}
    report = evaluate(
        policy({"metric": "breakdown_ms.communication", "max": 5.0}),
        summary,
    )
    assert report.outcomes[0].status == "PASS"
    assert report.outcomes[0].observed == pytest.approx(4.0)


def test_missing_metric_fails_unless_optional():
    required = evaluate(policy({"metric": "nope", "max": 1.0}),
                        GREEN_SUMMARY)
    assert required.outcomes[0].status == "FAIL"
    optional = evaluate(
        policy({"metric": "nope", "max": 1.0, "required": False}),
        GREEN_SUMMARY,
    )
    assert optional.outcomes[0].status == "SKIP"
    assert optional.ok


def test_series_rule_flags_latency_spike():
    calm = evaluate(
        policy({"series": "wall_ms", "zscore_max": 4.0, "warmup": 3}),
        GREEN_SUMMARY,
        {"iteration": list(range(20)),
         "wall_ms": [0.2 + 0.001 * (i % 3) for i in range(20)]},
    )
    assert calm.outcomes[0].status == "PASS"

    spiky = evaluate(
        policy({"series": "wall_ms", "zscore_max": 4.0, "warmup": 3}),
        GREEN_SUMMARY,
        {"iteration": list(range(20)),
         "wall_ms": [0.2 + 0.001 * (i % 3) for i in range(19)] + [5.0]},
    )
    assert spiky.outcomes[0].status == "FAIL"
    assert "iteration 19" in spiky.outcomes[0].message


def test_series_rule_missing_series():
    report = evaluate(
        policy({"series": "wall_ms", "zscore_max": 4.0}), GREEN_SUMMARY
    )
    assert report.outcomes[0].status == "FAIL"


def test_history_rule_skips_young_registry():
    rule = {"metric": "total_ms", "zscore_max": 3.0, "history": 10}
    history = [{"total_ms": 26.0}] * (MIN_HISTORY - 1)
    report = evaluate(policy(rule), GREEN_SUMMARY, history=history)
    assert report.outcomes[0].status == "SKIP"
    assert report.ok


def test_history_rule_passes_and_fails():
    rule = {"metric": "total_ms", "zscore_max": 3.0, "history": 10}
    steady = [{"total_ms": 26.0 + 0.2 * (i % 3)} for i in range(8)]
    green = evaluate(policy(rule), GREEN_SUMMARY, history=steady)
    assert green.outcomes[0].status == "PASS"

    regressed = evaluate(policy(rule), {"total_ms": 60.0},
                         history=steady)
    assert regressed.outcomes[0].status == "FAIL"
    assert regressed.outcomes[0].observed is not None
    assert abs(regressed.outcomes[0].observed) > 3.0


def test_history_rule_constant_history_zero_std():
    rule = {"metric": "total_ms", "zscore_max": 3.0, "history": 5}
    flat = [{"total_ms": 26.0}] * 5
    same = evaluate(policy(rule), {"total_ms": 26.0}, history=flat)
    assert same.outcomes[0].status == "PASS"
    moved = evaluate(policy(rule), {"total_ms": 26.5}, history=flat)
    assert moved.outcomes[0].status == "FAIL"
    assert math.isinf(abs(moved.outcomes[0].observed))


def test_report_lines_one_per_rule_plus_verdict():
    report = evaluate(
        policy({"metric": "total_ms", "max": 10.0},
               {"metric": "nope", "max": 1.0, "required": False}),
        GREEN_SUMMARY,
        subject="test-run",
    )
    lines = report.lines()
    assert len(lines) == 3
    assert lines[0].startswith("FAIL total_ms")
    assert lines[1].startswith("SKIP nope")
    assert lines[2] == "VIOLATION: 0 passed, 1 failed, 1 skipped — test-run"


def test_report_as_dict_round_trips():
    report = evaluate(policy({"metric": "total_ms", "max": 30.0}),
                      GREEN_SUMMARY, subject="x")
    payload = report.as_dict()
    assert payload["schema"] == SLO_SCHEMA
    assert payload["ok"] is True
    assert payload["rules"][0]["status"] == "PASS"
    assert payload["rules"][0]["label"] == "total_ms"
