"""``repro top`` dashboard model, rendering, and replay drivers."""

import pytest

from repro.obs.top import (
    TopModel,
    follow_stream,
    render_frame,
    replay_run,
    trace_record_events,
)

HEADER = {"format": "repro-live", "version": 1,
          "engine": "gum", "algorithm": "bfs", "graph": "TX",
          "num_gpus": 2}


def superstep(iteration, frontier=100, wall=0.001, start=0.0, **attrs):
    return {"event": "span", "name": "superstep",
            "track": "coordinator", "cat": "superstep",
            "virtual_start": start, "virtual_dur": wall,
            "attrs": {"iteration": iteration, "frontier_size": frontier,
                      "frontier_edges": frontier * 8, **attrs}}


def busy(gpu, dur=0.0008, start=0.0):
    return {"event": "span", "name": "busy", "track": f"gpu{gpu}",
            "cat": "worker", "virtual_start": start, "virtual_dur": dur,
            "attrs": {"gpu": gpu, "iteration": 0}}


# ----------------------------------------------------------------------
# model folding
# ----------------------------------------------------------------------
def test_header_seeds_meta_and_gpu_rows():
    model = TopModel()
    assert model.feed(HEADER) is True
    assert model.meta["engine"] == "gum"
    assert sorted(model.gpus) == [0, 1]


def test_superstep_updates_scalars_and_redraws():
    model = TopModel()
    model.feed(HEADER)
    changed = model.feed(superstep(0, frontier=42, wall=0.002,
                                   group_size=2, fsteal=True,
                                   stolen_edges=16))
    assert changed is True
    assert model.iteration == 0
    assert model.frontier_size == 42
    assert model.group_size == 2
    assert model.fsteal_iterations == 1
    assert model.stolen_edges == 16
    assert model.virtual_seconds == pytest.approx(0.002)
    assert model.frontier_history == [42]


def test_busy_stall_accumulate_without_redraw():
    model = TopModel()
    model.feed(HEADER)
    assert model.feed(busy(0)) is False
    stall = dict(busy(1))
    stall["name"] = "stall"
    assert model.feed(stall) is False
    assert model.gpus[0].busy == pytest.approx(0.0008)
    assert model.gpus[1].stall == pytest.approx(0.0008)
    assert model.gpus[0].utilization == 1.0
    assert model.gpus[1].utilization == 0.0


def test_gpu_resolved_from_track_when_attr_missing():
    model = TopModel()
    event = busy(3)
    event["attrs"] = {}
    model.feed(event)
    assert model.gpus[3].busy == pytest.approx(0.0008)


def test_chaos_span_counts_by_kind():
    model = TopModel()
    event = {"event": "span", "name": "chaos.kill_worker",
             "kind": "instant", "cat": "chaos",
             "virtual_start": 0.0, "virtual_dur": 0.0,
             "attrs": {"kind": "kill_worker", "iteration": 3}}
    assert model.feed(event) is True
    assert model.feed(event) is True
    assert model.chaos_counts == {"kill_worker": 2}


def test_metrics_event_stored_without_redraw():
    model = TopModel()
    event = {"event": "metrics", "iteration": 9,
             "snapshot": {"engine.iterations": {"type": "counter",
                                                "total": 9.0}}}
    assert model.feed(event) is False
    assert model.last_snapshot["engine.iterations"]["total"] == 9.0


def test_end_event_marks_done():
    model = TopModel()
    assert model.feed({"event": "end", "spans": 10}) is True
    assert model.ended


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def test_render_frame_shows_the_story():
    model = TopModel()
    model.feed(HEADER)
    model.feed(busy(0))
    model.feed(superstep(5, frontier=42, group_size=2, stolen_edges=7))
    frame = render_frame(model)
    assert "gum/bfs/TX" in frame
    assert "[live]" in frame
    assert "iter 5" in frame
    assert "frontier 42" in frame
    assert "gpu0" in frame and "gpu1" in frame
    assert "stolen edges 7" in frame


def test_render_frame_done_status_and_chaos_line():
    model = TopModel()
    model.feed(HEADER)
    model.feed({"event": "span", "name": "chaos.slow_gpu", "cat": "chaos",
                "kind": "instant", "virtual_start": 0.0,
                "virtual_dur": 0.0})
    model.feed({"event": "end", "spans": 1})
    frame = render_frame(model)
    assert "[done]" in frame
    assert "chaos" in frame and "slow_gpu:1" in frame


def test_render_empty_model():
    frame = render_frame(TopModel())
    assert "repro top" in frame
    assert "iter -" in frame


# ----------------------------------------------------------------------
# replay from archived trace records
# ----------------------------------------------------------------------
TRACE_HEADER = {"engine": "gum", "algorithm": "bfs", "graph": "TX",
                "num_gpus": 2}
TRACE_RECORDS = [
    {"iteration": 0, "frontier_size": 10, "frontier_edges": 80,
     "active_workers": [0, 1], "busy_ms": [0.8, 0.7],
     "stall_ms": [0.0, 0.1], "wall_ms": 0.8, "fsteal": False,
     "group_size": 2, "stolen_edges": 0},
    {"iteration": 1, "frontier_size": 30, "frontier_edges": 240,
     "active_workers": [0, 1], "busy_ms": [0.9, 0.9],
     "stall_ms": [0.0, 0.0], "wall_ms": 0.9, "fsteal": True,
     "group_size": 2, "stolen_edges": 12},
]


def test_trace_record_events_shape():
    events = trace_record_events(TRACE_HEADER, TRACE_RECORDS)
    assert events[0]["format"] == "repro-live"
    assert events[-1]["event"] == "end"
    supersteps = [e for e in events[1:-1] if e["name"] == "superstep"]
    assert [s["attrs"]["iteration"] for s in supersteps] == [0, 1]
    # virtual clock accumulates across iterations
    assert supersteps[1]["virtual_start"] == pytest.approx(0.8e-3)


def test_replay_matches_fed_model():
    """Replay and a hand-fed model agree — the shared-model invariant."""
    frames = []
    model = replay_run(TRACE_HEADER, TRACE_RECORDS, frames.append,
                       ansi=False)
    assert model.ended
    assert model.supersteps == 2
    assert model.fsteal_iterations == 1
    assert model.stolen_edges == 12
    assert model.gpus[0].busy == pytest.approx(1.7e-3)
    assert model.virtual_seconds == pytest.approx(1.7e-3)
    # header frame + one per superstep + the final frame
    assert len(frames) == 4
    assert "[done]" in frames[-1]


def test_replay_frames_cap():
    frames = []
    replay_run(TRACE_HEADER, TRACE_RECORDS, frames.append, frames=1,
               ansi=False)
    assert len(frames) == 2  # capped redraw + guaranteed final frame


def test_replay_ansi_clears_screen():
    frames = []
    replay_run(TRACE_HEADER, TRACE_RECORDS, frames.append, ansi=True)
    assert frames[0].startswith("\x1b[2J\x1b[H")


# ----------------------------------------------------------------------
# following a recorded stream file
# ----------------------------------------------------------------------
def test_follow_stream_reads_recorded_file(tmp_path):
    from repro.obs import MetricsRegistry, StreamingSink, SpanRecord

    path = tmp_path / "run.stream"
    sink = StreamingSink(path, meta={"engine": "gum", "num_gpus": 1},
                         metrics=MetricsRegistry())
    sink.emit(SpanRecord(name="busy", track="gpu0", cat="worker",
                         virtual_start=0.0, virtual_dur=0.0008,
                         attrs={"gpu": 0, "iteration": 0}))
    sink.emit(SpanRecord(name="superstep", track="coordinator",
                         cat="superstep", virtual_start=0.0,
                         virtual_dur=0.001,
                         attrs={"iteration": 0, "frontier_size": 5}))
    sink.close()

    frames = []
    model = follow_stream(path, frames.append, follow=False, ansi=False)
    assert model.ended
    assert model.iteration == 0
    assert model.gpus[0].busy == pytest.approx(0.0008)
    assert len(frames) == 1  # read-once mode draws only the final frame
    assert "[done]" in frames[0]
