"""Unit tests for the span tracer and its sinks."""

import json

import pytest

from repro.obs import (
    InMemorySink,
    JsonlSink,
    NULL_TRACER,
    SpanRecord,
    Tracer,
)


def test_span_records_wall_time_and_attrs():
    sink = InMemorySink()
    tracer = Tracer(sinks=[sink])
    with tracer.span("solve", cat="fsteal", solver="greedy") as span:
        span.set(objective=1.5)
    assert len(sink.records) == 1
    record = sink.records[0]
    assert record.name == "solve"
    assert record.cat == "fsteal"
    assert record.attrs == {"solver": "greedy", "objective": 1.5}
    assert record.wall_start is not None
    assert record.wall_dur >= 0.0
    assert record.virtual_start is None


def test_spans_nest_with_depth():
    sink = InMemorySink()
    tracer = Tracer(sinks=[sink])
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    # inner closes (and emits) first
    inner, outer = sink.records
    assert inner.name == "inner" and inner.depth == 1
    assert outer.name == "outer" and outer.depth == 0


def test_virtual_span_and_instant():
    sink = InMemorySink()
    tracer = Tracer(sinks=[sink])
    tracer.virtual_span("busy", start=0.5, dur=0.25, track="gpu3")
    tracer.instant("group_change", virtual_ts=0.75)
    busy, instant = sink.records
    assert busy.virtual_start == 0.5 and busy.virtual_dur == 0.25
    assert busy.track == "gpu3"
    assert instant.kind == "instant" and instant.virtual_dur == 0.0


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path, meta={"engine": "gum"})])
    with tracer.span("a", key="v"):
        pass
    tracer.virtual_span("b", start=0.0, dur=1.0)
    tracer.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0] == {"format": "repro-trace", "version": 1,
                        "engine": "gum"}
    assert lines[1]["name"] == "a"
    assert lines[1]["attrs"] == {"key": "v"}
    assert "virtual_start" not in lines[1]
    assert lines[2]["virtual_dur"] == 1.0
    assert "wall_start" not in lines[2]
    tracer.close()  # idempotent


def test_record_as_dict_omits_absent_clocks():
    record = SpanRecord(name="x", virtual_start=1.0, virtual_dur=2.0)
    out = record.as_dict()
    assert "wall_start" not in out
    assert out["virtual_start"] == 1.0


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("anything", attr=1) as span:
        assert span.set(more=2) is span
        span.set_virtual(0.0, 1.0)
    NULL_TRACER.virtual_span("x", 0.0, 1.0)
    NULL_TRACER.instant("y")
    NULL_TRACER.emit(SpanRecord(name="z"))
    assert NULL_TRACER.sinks == []


def test_null_tracer_rejects_sinks():
    with pytest.raises(ValueError, match="NULL_TRACER"):
        NULL_TRACER.add_sink(InMemorySink())


def test_add_sink_after_construction():
    tracer = Tracer()
    assert tracer.enabled
    sink = InMemorySink()
    tracer.add_sink(sink)
    with tracer.span("late"):
        pass
    assert [r.name for r in sink.records] == ["late"]
