"""Unit tests for the Partition structure."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import Partition


def make_partition(graph, owners):
    return Partition(
        graph, np.asarray(owners, dtype=np.int64),
        int(max(owners)) + 1 if len(owners) else 1,
    )


def test_basic(tiny_graph):
    partition = make_partition(tiny_graph, [0, 0, 1, 1, 0, 1])
    assert partition.num_fragments == 2
    assert partition.vertices_of(0).tolist() == [0, 1, 4]
    assert partition.vertices_of(1).tolist() == [2, 3, 5]
    assert partition.fragment_sizes().tolist() == [3, 3]


def test_fragment_edges(tiny_graph):
    partition = make_partition(tiny_graph, [0, 0, 1, 1, 0, 1])
    # fragment 0 owns vertices 0,1,4 with out-degrees 2,1,1
    assert partition.fragment_edges().tolist() == [4, 3]
    assert int(partition.fragment_edges().sum()) == tiny_graph.num_edges


def test_outer_vertices(tiny_graph):
    partition = make_partition(tiny_graph, [0, 0, 1, 1, 0, 1])
    # fragment 0 edges: 0->1 (inner), 0->2 (outer), 1->3 (outer), 4->5 (outer)
    assert partition.outer_vertices_of(0).tolist() == [2, 3, 5]
    assert partition.outer_vertices_of(1).tolist() == [0, 4]


def test_split_frontier(tiny_graph):
    partition = make_partition(tiny_graph, [0, 0, 1, 1, 0, 1])
    parts = partition.split_frontier(np.array([0, 2, 3, 4]))
    assert parts[0].tolist() == [0, 4]
    assert parts[1].tolist() == [2, 3]


def test_split_frontier_empty(tiny_graph):
    partition = make_partition(tiny_graph, [0, 0, 1, 1, 0, 1])
    parts = partition.split_frontier(np.array([], dtype=np.int64))
    assert all(p.size == 0 for p in parts)


def test_empty_fragment_allowed(tiny_graph):
    partition = Partition(
        tiny_graph, np.zeros(6, dtype=np.int64), num_fragments=3
    )
    assert partition.vertices_of(2).size == 0
    assert partition.fragment_edges().tolist() == [7, 0, 0]


def test_validation_errors(tiny_graph):
    with pytest.raises(PartitionError, match="shape"):
        Partition(tiny_graph, np.zeros(3, dtype=np.int64), 1)
    with pytest.raises(PartitionError, match="range"):
        Partition(tiny_graph, np.full(6, 5, dtype=np.int64), 2)
    with pytest.raises(PartitionError, match="fragment"):
        Partition(tiny_graph, np.zeros(6, dtype=np.int64), 0)


def test_owner_readonly(tiny_graph):
    partition = make_partition(tiny_graph, [0, 1, 0, 1, 0, 1])
    with pytest.raises(ValueError):
        partition.owner[0] = 1


def test_validate_passes(tiny_graph):
    partition = make_partition(tiny_graph, [0, 1, 0, 1, 0, 1])
    partition.validate()  # must not raise
