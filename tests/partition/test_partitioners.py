"""Unit tests for the three partitioner families."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import grid_2d, rmat
from repro.partition import (
    PARTITIONERS,
    edge_balance,
    edge_cut_fraction,
    make_partition,
    metis_like_partition,
    random_partition,
    segmented_partition,
)


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
def test_partitioners_cover_all_vertices(name, skewed_graph):
    partition = make_partition(name, skewed_graph, 8, seed=0)
    assert partition.num_fragments == 8
    sizes = partition.fragment_sizes()
    assert int(sizes.sum()) == skewed_graph.num_vertices
    assert int(partition.fragment_edges().sum()) == skewed_graph.num_edges
    partition.validate()


def test_random_partition_deterministic(skewed_graph):
    a = random_partition(skewed_graph, 4, seed=1)
    b = random_partition(skewed_graph, 4, seed=1)
    c = random_partition(skewed_graph, 4, seed=2)
    assert np.array_equal(a.owner, b.owner)
    assert not np.array_equal(a.owner, c.owner)


def test_random_partition_roughly_even(skewed_graph):
    partition = random_partition(skewed_graph, 4, seed=0)
    sizes = partition.fragment_sizes()
    assert sizes.min() > 0.8 * sizes.mean()


def test_segmented_is_contiguous(skewed_graph):
    partition = segmented_partition(skewed_graph, 8)
    owner = partition.owner
    # contiguous ranges: owner must be non-decreasing over vertex ids
    assert np.all(np.diff(owner) >= 0)


def test_segmented_balances_edges(skewed_graph):
    partition = segmented_partition(skewed_graph, 8)
    assert edge_balance(partition) < 1.25


def test_segmented_single_fragment(skewed_graph):
    partition = segmented_partition(skewed_graph, 1)
    assert np.all(partition.owner == 0)


def test_segmented_edgeless_graph():
    from repro.graph import from_edges

    graph = from_edges([], num_vertices=10)
    partition = segmented_partition(graph, 3)
    assert int(partition.fragment_sizes().sum()) == 10


def test_metis_like_cut_beats_random_on_local_graph():
    graph = grid_2d(24, 24, seed=0)
    metis = metis_like_partition(graph, 4, seed=0)
    rand = random_partition(graph, 4, seed=0)
    assert edge_cut_fraction(metis) < 0.5 * edge_cut_fraction(rand)


def test_metis_like_respects_balance(skewed_graph):
    partition = metis_like_partition(skewed_graph, 8, seed=0)
    assert edge_balance(partition) < 2.0


def test_make_partition_unknown():
    graph = rmat(6, 4, seed=0)
    with pytest.raises(PartitionError, match="unknown partitioner"):
        make_partition("kahip", graph, 4)


def test_single_fragment_everywhere(skewed_graph):
    for name in PARTITIONERS:
        partition = make_partition(name, skewed_graph, 1, seed=0)
        assert np.all(partition.owner == 0)
