"""Unit tests for partition quality metrics."""

import numpy as np
import pytest

from repro.graph import complete_graph, from_edges
from repro.partition import (
    Partition,
    edge_balance,
    edge_cut_fraction,
    evaluate_partition,
    replication_factor,
)


def two_way(graph, owners):
    return Partition(graph, np.asarray(owners, dtype=np.int64), 2)


def test_edge_balance_even(tiny_graph):
    # fragments own 4 and 3 edges -> max/mean = 4/3.5
    partition = two_way(tiny_graph, [0, 0, 1, 1, 0, 1])
    assert edge_balance(partition) == pytest.approx(4 / 3.5)


def test_edge_balance_degenerate(tiny_graph):
    partition = two_way(tiny_graph, [0, 0, 0, 0, 0, 0])
    assert edge_balance(partition) == pytest.approx(2.0)


def test_edge_cut_no_cut():
    graph = from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
    partition = two_way(graph, [0, 0, 1, 1])
    assert edge_cut_fraction(partition) == 0.0
    assert replication_factor(partition) == pytest.approx(1.0)


def test_edge_cut_full():
    graph = complete_graph(4)
    partition = two_way(graph, [0, 1, 0, 1])
    # 8 of 12 edges cross
    assert edge_cut_fraction(partition) == pytest.approx(8 / 12)


def test_replication_counts_ghosts(tiny_graph):
    partition = two_way(tiny_graph, [0, 0, 1, 1, 0, 1])
    # fragment 0 sees ghosts {2,3,5}; fragment 1 sees ghosts {0,4}
    assert replication_factor(partition) == pytest.approx((6 + 5) / 6)


def test_evaluate_partition_bundle(tiny_graph):
    quality = evaluate_partition(two_way(tiny_graph, [0, 0, 1, 1, 0, 1]))
    as_dict = quality.as_dict()
    assert set(as_dict) == {
        "edge_balance", "edge_cut_fraction", "replication_factor",
    }
    assert as_dict["edge_cut_fraction"] == pytest.approx(
        edge_cut_fraction(two_way(tiny_graph, [0, 0, 1, 1, 0, 1]))
    )
