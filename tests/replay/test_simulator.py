"""The replay simulator (repro.replay) and its pinned invariants.

The headline contract: replaying a recorded run under its **original**
model is bit-identical — every per-iteration wall and the end-to-end
total equal the recording exactly, and all three byte-level checks
(no-op span-DAG replay, stored-prediction reconstruction, sealed RMSRE
reconstruction) pass. Model and topology overrides perturb virtual
time deterministically, and degenerate overrides (same topology,
oracle model, mismatched GPU counts) behave as documented.
"""

import json

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core.costmodel import MODEL_FAMILIES, UniformCostModel
from repro.core.costmodel_v2 import save_artifact
from repro.errors import ReproError
from repro.hardware import dgx1
from repro.partition import random_partition
from repro.replay import (
    REPLAY_SCHEMA,
    ReplayError,
    format_replay_result,
    replay_run,
    resolve_replay_model,
)
from repro.runs import RunRegistry, workload_fingerprint
from repro.runtime import BSPEngine

REFERENCE_RUNS = (
    "benchmarks/reference/tx-bfs-4gpu",
    "benchmarks/reference/tx-sssp-4gpu",
)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, skewed_graph, source):
    """A freshly recorded GUM run in a throwaway registry."""
    registry = RunRegistry(tmp_path_factory.mktemp("reg") / "runs")
    result = repro.run(skewed_graph, "pr", num_gpus=4)
    run_id = registry.record_result(result, workload_fingerprint(
        engine="gum", algorithm="pr", graph="skewed", num_gpus=4,
    ))
    return registry, run_id, result


# ----------------------------------------------------------------------
# Bit-identity under the original model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ref", REFERENCE_RUNS)
def test_reference_replay_is_bit_identical(tmp_path, ref):
    registry = RunRegistry(tmp_path / "runs")
    outcome = replay_run(registry, ref)
    assert outcome.bit_identical
    assert all(outcome.checks.values()), outcome.checks
    # exact equality, not approx: the invariant is byte-level
    assert outcome.replayed_total_ms == outcome.recorded_total_ms
    for it in outcome.iterations:
        assert it.replayed_wall_ms == it.recorded_wall_ms


def test_fresh_recording_replays_bit_identically(recorded):
    registry, run_id, result = recorded
    outcome = replay_run(registry, run_id)
    assert outcome.bit_identical
    assert outcome.replayed_total_ms == outcome.recorded_total_ms
    assert outcome.replayed_total_ms == pytest.approx(result.total_ms)
    assert outcome.run_id == run_id
    assert outcome.model_label is None


def test_replay_is_deterministic(recorded):
    registry, run_id, _ = recorded
    a = replay_run(registry, run_id)
    b = replay_run(registry, run_id)
    assert a.as_dict() == b.as_dict()


def test_as_dict_is_schemaed_json(recorded):
    registry, run_id, _ = recorded
    payload = replay_run(registry, run_id).as_dict()
    assert payload["schema"] == REPLAY_SCHEMA
    json.dumps(payload)  # no numpy scalars may leak through


# ----------------------------------------------------------------------
# Model overrides
# ----------------------------------------------------------------------
def test_model_override_is_not_bit_identical(recorded):
    registry, run_id, _ = recorded
    outcome = replay_run(registry, run_id,
                         cost_model=UniformCostModel())
    assert not outcome.bit_identical
    # the override shifts predictions, never the byte-level checks of
    # the original-model path
    assert all(outcome.checks.values()), outcome.checks
    assert outcome.model_label == "uniform"
    assert outcome.model_rmsre is not None
    assert outcome.replayed_total_ms != outcome.recorded_total_ms


def test_fitted_artifact_override_attributes_per_gpu(recorded,
                                                     tmp_path):
    registry, run_id, result = recorded
    samples = result.ledger.export_samples()
    model = MODEL_FAMILIES["tree"]()
    model.fit(samples.features, samples.costs)
    path = tmp_path / "model.json"
    save_artifact(model, path)
    outcome = replay_run(registry, run_id, cost_model=str(path))
    assert outcome.model_label.startswith("artifact:tree@")
    assert outcome.by_gpu  # per-GPU provenance made it through
    for stats in outcome.by_gpu.values():
        assert stats["count"] > 0
        assert np.isfinite(stats["rmsre"])
    text = format_replay_result(outcome)
    assert "not bit-identical" in text


def test_resolve_replay_model_rejects_the_oracle():
    with pytest.raises(ReplayError, match="oracle"):
        resolve_replay_model("oracle")


def test_resolve_replay_model_named_specs():
    assert resolve_replay_model("uniform").name == "uniform"
    assert resolve_replay_model("default").name.startswith("poly")


# ----------------------------------------------------------------------
# Topology overrides
# ----------------------------------------------------------------------
def test_identical_topology_override_changes_nothing(recorded):
    registry, run_id, _ = recorded
    outcome = replay_run(registry, run_id, topology="default")
    # the bandwidth ratio is exactly 1.0, so every per-iteration
    # communication delta is exactly zero
    assert outcome.replayed_total_ms == outcome.recorded_total_ms
    assert all(it.communication_delta_ms == 0.0
               for it in outcome.iterations)
    # but an override was requested, so the gate must not claim
    # bit-identity
    assert not outcome.bit_identical


def test_degraded_topology_costs_time(tmp_path):
    registry = RunRegistry(tmp_path / "runs")
    # the 2x2 cluster reaches half its GPUs over inter-node links that
    # are far slower than the DGX-1's NVLinks
    outcome = replay_run(registry, REFERENCE_RUNS[0],
                         topology="nodes=2x2")
    assert outcome.topology_label
    assert outcome.replayed_total_ms > outcome.recorded_total_ms


def test_gpu_count_mismatch_is_rejected(recorded):
    registry, run_id, _ = recorded
    with pytest.raises(ReplayError, match="GPUs"):
        replay_run(registry, run_id, topology="nodes=2x4")


# ----------------------------------------------------------------------
# Error paths and the CLI gate
# ----------------------------------------------------------------------
def test_unledgered_run_is_a_replay_error(tmp_path, skewed_graph,
                                          source):
    registry = RunRegistry(tmp_path / "runs")
    result = BSPEngine(dgx1(4)).run(
        skewed_graph, random_partition(skewed_graph, 4, seed=0),
        "bfs", source=source,
    )
    run_id = registry.record_result(result, workload_fingerprint(
        engine="bsp", algorithm="bfs", graph="skewed", num_gpus=4,
    ))
    with pytest.raises(ReplayError, match="ledger"):
        replay_run(registry, run_id)


def test_cli_check_passes_on_reference(capsys):
    assert main(["replay", REFERENCE_RUNS[0], "--check"]) == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out


def test_cli_check_fails_under_an_override(capsys):
    code = main(["replay", REFERENCE_RUNS[0],
                 "--cost-model", "uniform", "--check"])
    assert code == 1


def test_cli_json_payload(capsys):
    assert main(["replay", REFERENCE_RUNS[0], "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == REPLAY_SCHEMA
    assert payload["bit_identical"] is True


def test_cli_bad_ref_exits_2(tmp_path, capsys):
    code = main(["replay", "no-such-run",
                 "--runs-dir", str(tmp_path / "empty")])
    assert code == 2
    assert "error:" in capsys.readouterr().err
