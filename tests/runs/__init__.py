"""Tests for the persistent run registry."""
