"""CLI tests for the ``repro runs`` command family."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def runs_dir(tmp_path_factory):
    """One recorded TX/bfs run shared by the read-only tests."""
    root = tmp_path_factory.mktemp("registry")
    code = main([
        "runs", "record", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "4", "--cost-model", "oracle",
        "--runs-dir", str(root),
    ])
    assert code == 0
    return root


def test_runs_record_and_list(runs_dir, capsys):
    assert main(["runs", "list", "--runs-dir", str(runs_dir)]) == 0
    out = capsys.readouterr().out
    assert "gum-bfs-TX-4gpu" in out
    assert "run" in out


def test_runs_list_json(runs_dir, capsys):
    assert main(["runs", "list", "--json",
                 "--runs-dir", str(runs_dir)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) >= 1
    assert payload[0]["kind"] == "run"
    assert payload[0]["total_ms"] > 0


def test_runs_show(runs_dir, capsys):
    assert main(["runs", "show", "latest",
                 "--runs-dir", str(runs_dir)]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["schema"] == "repro-run/1"
    assert manifest["fingerprint"]["workload"]["graph"] == "TX"
    assert manifest["fingerprint"]["workload"]["cost_model"] == "oracle"


def test_runs_analyze(runs_dir, capsys):
    assert main(["runs", "analyze", "latest",
                 "--runs-dir", str(runs_dir)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "attribution" in out


def test_runs_analyze_whatif_json(runs_dir, capsys):
    code = main([
        "runs", "analyze", "latest", "--runs-dir", str(runs_dir),
        "--scale-gpu", "0=0.5", "--zero-overhead", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    buckets = payload["analysis"]["buckets_ms"]
    total = payload["analysis"]["total_ms"]
    assert sum(buckets.values()) == pytest.approx(total, rel=0.01)
    assert payload["whatif"]["total_ms"] < payload["whatif"]["baseline_ms"]
    assert "gpu0 compute x0.5" in payload["whatif"]["scenario"]


def test_runs_analyze_bad_scale_operand(runs_dir):
    with pytest.raises(SystemExit):
        main(["runs", "analyze", "latest", "--runs-dir", str(runs_dir),
              "--scale-gpu", "bogus"])


def test_runs_diff_self_is_clean(runs_dir, capsys):
    code = main(["runs", "diff", "latest", "latest", "--quiet",
                 "--runs-dir", str(runs_dir)])
    assert code == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "REGRESSED" not in out


def test_runs_diff_flags_regression(runs_dir, tmp_path, capsys):
    base_dir = sorted(
        p for p in runs_dir.iterdir()
        if (p / "manifest.json").is_file()
    )[0]
    worse = json.loads((base_dir / "manifest.json").read_text())
    worse["id"] = "injected"
    worse["summary"]["total_ms"] *= 1.5
    injected = tmp_path / "injected"
    injected.mkdir()
    (injected / "manifest.json").write_text(json.dumps(worse))
    code = main(["runs", "diff", str(base_dir), str(injected),
                 "--runs-dir", str(runs_dir)])
    assert code == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_runs_diff_incommensurable_exits_2(runs_dir, tmp_path, capsys):
    base_dir = sorted(
        p for p in runs_dir.iterdir()
        if (p / "manifest.json").is_file()
    )[0]
    other = json.loads((base_dir / "manifest.json").read_text())
    other["id"] = "other-workload"
    other["fingerprint"]["workload"]["graph"] = "USA"
    other_dir = tmp_path / "other"
    other_dir.mkdir()
    (other_dir / "manifest.json").write_text(json.dumps(other))
    code = main(["runs", "diff", str(base_dir), str(other_dir),
                 "--runs-dir", str(runs_dir)])
    assert code == 2
    assert "incommensurable" in capsys.readouterr().err
    # --force downgrades the refusal to a note
    code = main(["runs", "diff", str(base_dir), str(other_dir),
                 "--force", "--quiet", "--runs-dir", str(runs_dir)])
    assert code == 0


def test_runs_unknown_ref_exits_2(runs_dir, capsys):
    code = main(["runs", "show", "no-such-run",
                 "--runs-dir", str(runs_dir)])
    assert code == 2
    assert "unknown run" in capsys.readouterr().err


def test_run_command_record_flag(tmp_path, capsys):
    root = tmp_path / "registry"
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gunrock", "--gpus", "2", "--json",
        "--record", "--runs-dir", str(root),
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    run_id = payload["run_id"]
    assert (root / run_id / "manifest.json").is_file()
    assert (root / run_id / "trace.jsonl").is_file()
    assert (root / run_id / "timeseries.json").is_file()


def test_profile_command_record_flag(tmp_path, capsys):
    root = tmp_path / "registry"
    code = main([
        "profile", "--graph", "TX", "--algorithm", "bfs",
        "--gpus", "2", "--cost-model", "oracle",
        "--out", str(tmp_path / "p.trace.json"),
        "--record", "--runs-dir", str(root), "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    manifest = json.loads(
        (root / payload["run_id"] / "manifest.json").read_text()
    )
    # profile always collects metrics; they must land in the manifest
    assert "engine.iterations" in manifest["metrics"]
    # and the archived run must be diffable against itself via the CLI
    assert main(["runs", "diff", "latest", "latest", "--quiet",
                 "--runs-dir", str(root)]) == 0


def test_runs_gc(tmp_path, capsys):
    root = tmp_path / "registry"
    for __ in range(2):
        assert main([
            "run", "--graph", "TX", "--algorithm", "bfs",
            "--engine", "bsp", "--gpus", "2",
            "--record", "--runs-dir", str(root),
        ]) == 0
    capsys.readouterr()
    assert main(["runs", "gc", "--keep", "1",
                 "--runs-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "removed 1 run(s)" in out
    assert main(["runs", "list", "--json",
                 "--runs-dir", str(root)]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 1
