"""Unit tests for the run registry and cross-run diffs."""

import copy
import json

import pytest

from repro.errors import RunRegistryError
from repro.hardware import dgx1
from repro.obs import MetricsRegistry, analyze
from repro.runs import (
    RUN_SCHEMA,
    RunRegistry,
    diff_manifests,
    format_diff,
    provenance_fingerprint,
    workload_fingerprint,
)
from repro.runs.registry import WORKLOAD_KEYS
from repro.runtime import BSPEngine


@pytest.fixture(scope="module")
def result(skewed_graph, skewed_partition, source):
    return BSPEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )


@pytest.fixture()
def workload():
    return workload_fingerprint(
        engine="bsp", algorithm="bfs", graph="skewed", num_gpus=8
    )


@pytest.fixture()
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs")


@pytest.fixture()
def recorded(registry, result, workload):
    metrics = MetricsRegistry()
    metrics.counter("engine.iterations").inc(result.num_iterations)
    run_id = registry.record_result(result, workload,
                                    metrics=metrics.snapshot())
    return run_id


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_workload_fingerprint_covers_all_gate_keys(workload):
    assert set(workload) == set(WORKLOAD_KEYS)
    assert workload["seed"] == 42  # config.DEFAULT_SEED
    assert workload["partition_seed"] == 0


def test_provenance_records_git_and_versions():
    provenance = provenance_fingerprint()
    assert {"git_sha", "repro", "python", "numpy", "scipy"} <= set(
        provenance
    )
    # inside this checkout the SHA must resolve
    assert provenance["git_sha"] != "unknown"
    assert len(provenance["git_sha"]) == 40


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def test_record_writes_all_artifacts(registry, recorded, result):
    run_dir = registry.root / recorded
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["schema"] == RUN_SCHEMA
    assert manifest["kind"] == "run"
    assert manifest["id"] == recorded
    assert manifest["summary"]["total_ms"] == pytest.approx(
        result.total_ms
    )
    assert manifest["metrics"]["engine.iterations"]["total"] == (
        result.num_iterations
    )
    header, records = registry.load_run_trace(recorded)
    assert len(records) == result.num_iterations
    series = registry.load_timeseries(recorded)
    assert len(series["wall_ms"]) == result.num_iterations
    assert series["iteration"][0] == 0


def test_manifest_is_byte_stable(registry, recorded):
    raw = (registry.root / recorded / "manifest.json").read_text()
    manifest = json.loads(raw)
    assert raw == json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def test_recorded_trace_analyzes(registry, recorded, result):
    report = analyze(registry.load_run_trace(recorded))
    assert report.total_ms == pytest.approx(result.total_ms, rel=1e-6)


def test_record_bench(registry):
    report = {"schema": "repro-bench/1", "benchmarks": {
        "case": {"score": 1.0, "seconds": 0.1, "calls": 3}}}
    run_id = registry.record_bench(report)
    manifest = registry.load_manifest(run_id)
    assert manifest["kind"] == "bench"
    assert manifest["report"]["benchmarks"]["case"]["score"] == 1.0


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------
def test_resolve_by_id_prefix_latest_and_path(
        registry, recorded, result, workload):
    assert registry.resolve(recorded).name == recorded
    assert registry.resolve(recorded[:10]).name == recorded
    assert registry.resolve("latest").name == recorded
    run_dir = registry.root / recorded
    assert registry.resolve(str(run_dir)) == run_dir
    assert registry.resolve(str(run_dir / "manifest.json")) == run_dir


def test_resolve_unknown_and_ambiguous(registry, recorded, result,
                                       workload):
    with pytest.raises(RunRegistryError, match="unknown run"):
        registry.resolve("no-such-run")
    second = registry.record_result(result, workload)
    assert second != recorded
    with pytest.raises(RunRegistryError, match="ambiguous"):
        # both ids share the engine/algorithm/graph slug
        registry.resolve("bsp-bfs-skewed")


def test_empty_registry(registry):
    assert registry.ids() == []
    with pytest.raises(RunRegistryError, match="no runs recorded"):
        registry.resolve("latest")


def test_corrupt_manifest_rejected(registry, recorded):
    path = registry.root / recorded / "manifest.json"
    path.write_text("{not json")
    with pytest.raises(RunRegistryError, match="corrupt"):
        registry.load_manifest(str(registry.root / recorded))


def test_wrong_schema_rejected(registry, recorded):
    path = registry.root / recorded / "manifest.json"
    manifest = json.loads(path.read_text())
    manifest["schema"] = "somebody-else/9"
    path.write_text(json.dumps(manifest))
    with pytest.raises(RunRegistryError, match="unsupported"):
        registry.load_manifest(str(registry.root / recorded))


# ----------------------------------------------------------------------
# GC
# ----------------------------------------------------------------------
def test_gc_keeps_newest(registry, result, workload):
    ids = [registry.record_result(result, workload) for __ in range(3)]
    removed = registry.gc(keep=1, dry_run=True)
    assert removed == ids[:2]
    assert len(registry.ids()) == 3  # dry run deleted nothing
    removed = registry.gc(keep=1)
    assert removed == ids[:2]
    assert registry.ids() == [ids[2]]
    with pytest.raises(RunRegistryError, match="keep"):
        registry.gc(keep=-1)


# ----------------------------------------------------------------------
# Diffs
# ----------------------------------------------------------------------
def test_diff_identical_is_silent(registry, recorded):
    manifest = registry.load_manifest(recorded)
    diff = diff_manifests(manifest, manifest)
    assert diff.ok
    assert diff.regressions == []
    assert diff.notes == []
    text = format_diff(diff, verbose=False)
    assert "OK" in text
    assert "REGRESSED" not in text


def test_diff_flags_injected_regression(registry, recorded):
    base = registry.load_manifest(recorded)
    worse = copy.deepcopy(base)
    # acceptance criterion: a >=30% injected regression must be flagged
    worse["summary"]["total_ms"] *= 1.5
    diff = diff_manifests(base, worse)
    assert not diff.ok
    names = [delta.name for delta in diff.regressions]
    assert "total_ms" in names
    assert "REGRESSED" in format_diff(diff)
    # the reverse direction (an improvement) never fails the gate
    assert diff_manifests(worse, base).ok


def test_diff_absolute_floor_guards_tiny_metrics(registry, recorded):
    base = registry.load_manifest(recorded)
    current = copy.deepcopy(base)
    base["summary"]["breakdown_ms"]["serialization"] = 1e-5
    current["summary"]["breakdown_ms"]["serialization"] = 1e-4
    # 10x relative change, but far below the 1e-3 ms floor: noise
    diff = diff_manifests(base, current)
    assert diff.ok


def test_diff_refuses_incommensurable(registry, recorded):
    base = registry.load_manifest(recorded)
    other = copy.deepcopy(base)
    other["fingerprint"]["workload"]["num_gpus"] = 4
    other["fingerprint"]["workload"]["seed"] = 7
    with pytest.raises(RunRegistryError) as excinfo:
        diff_manifests(base, other)
    message = str(excinfo.value)
    assert "incommensurable" in message
    assert "num_gpus" in message and "seed" in message
    forced = diff_manifests(base, other, force=True)
    assert any("workload mismatch" in note for note in forced.notes)


def test_diff_reports_provenance_changes(registry, recorded):
    base = registry.load_manifest(recorded)
    current = copy.deepcopy(base)
    current["fingerprint"]["provenance"]["git_sha"] = "f" * 40
    diff = diff_manifests(base, current)
    assert diff.ok  # provenance never gates
    assert any("git_sha" in note for note in diff.notes)


def test_diff_kind_mismatch(registry, recorded):
    base = registry.load_manifest(recorded)
    bench = copy.deepcopy(base)
    bench["kind"] = "bench"
    with pytest.raises(RunRegistryError, match="cannot diff"):
        diff_manifests(base, bench)


def test_diff_bench_kind_uses_perfharness_guards(registry):
    report = {"schema": "repro-bench/1", "calibration_seconds": 1e-3,
              "benchmarks": {
                  "fast": {"score": 1.0, "seconds": 0.1, "calls": 3,
                           "meta": {}}}}
    base_id = registry.record_bench(report)
    worse = copy.deepcopy(report)
    worse["benchmarks"]["fast"]["score"] = 1.5
    worse["benchmarks"]["fast"]["seconds"] = 0.15
    worse_id = registry.record_bench(worse)
    diff = diff_manifests(registry.load_manifest(base_id),
                          registry.load_manifest(worse_id))
    assert not diff.ok
    assert diff.regressions[0].name == "bench.fast.score"
    # identical bench reports are clean
    assert diff_manifests(registry.load_manifest(base_id),
                          registry.load_manifest(base_id)).ok


def test_diff_as_dict_is_json(registry, recorded):
    manifest = registry.load_manifest(recorded)
    payload = diff_manifests(manifest, manifest).as_dict()
    json.dumps(payload)
    assert payload["ok"] is True
