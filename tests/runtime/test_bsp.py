"""Unit and integration tests for the BSP engine."""

import numpy as np
import pytest

from repro.algorithms.validate import (
    reference_bfs,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)
from repro.errors import EngineError
from repro.graph import symmetrize
from repro.hardware import dgx1, single_gpu
from repro.partition import random_partition
from repro.runtime import BSPEngine, EngineOptions
from repro.runtime.scheduler import IterationPlan, Scheduler, WorkChunk


def test_bfs_correct(skewed_graph, skewed_partition, source):
    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_graph, skewed_partition, "bfs",
                        source=source)
    assert result.converged
    assert np.allclose(result.values, reference_bfs(skewed_graph, source))


def test_sssp_correct(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 8, seed=0)
    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_weighted, partition, "sssp", source=source)
    assert np.allclose(result.values,
                       reference_sssp(skewed_weighted, source))


def test_wcc_correct(skewed_symmetric):
    partition = random_partition(skewed_symmetric, 8, seed=0)
    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_symmetric, partition, "wcc")
    assert np.allclose(result.values, reference_wcc(skewed_symmetric))


def test_pr_correct(skewed_graph, skewed_partition):
    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_graph, skewed_partition, "pr", tol=1e-10)
    ref = reference_pagerank(skewed_graph, tol=1e-10)
    assert np.abs(result.values - ref).max() < 1e-8


def test_single_gpu_runs(skewed_graph, source):
    partition = random_partition(skewed_graph, 1, seed=0)
    engine = BSPEngine(single_gpu())
    result = engine.run(skewed_graph, partition, "bfs", source=source)
    assert result.converged
    assert result.num_gpus == 1
    assert result.stall_fraction() == 0.0


def test_breakdown_buckets_sum_to_wall(skewed_graph, skewed_partition,
                                       source):
    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_graph, skewed_partition, "bfs",
                        source=source)
    for record in result.iterations:
        assert record.wall_seconds == pytest.approx(
            record.breakdown.total, rel=1e-9
        )
    assert result.total_seconds == pytest.approx(
        sum(r.wall_seconds for r in result.iterations), rel=1e-9
    )


def test_busy_stall_consistency(skewed_graph, skewed_partition, source):
    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_graph, skewed_partition, "sssp",
                        source=source)
    for record in result.iterations:
        active = record.active_workers
        critical = record.busy_seconds[active].max()
        assert np.allclose(
            record.busy_seconds[active] + record.stall_seconds[active],
            critical,
        )


def test_mismatched_partition_rejected(skewed_graph):
    partition = random_partition(skewed_graph, 4, seed=0)
    engine = BSPEngine(dgx1(8))
    with pytest.raises(EngineError, match="fragments"):
        engine.run(skewed_graph, partition, "bfs", source=0)


def test_partition_for_other_graph_rejected(skewed_graph, tiny_graph):
    partition = random_partition(tiny_graph, 8, seed=0)
    engine = BSPEngine(dgx1(8))
    with pytest.raises(EngineError, match="different graph"):
        engine.run(skewed_graph, partition, "bfs", source=0)


def test_iteration_limit_marks_unconverged(road_graph):
    partition = random_partition(road_graph, 8, seed=0)
    engine = BSPEngine(dgx1(8))
    result = engine.run(road_graph, partition, "bfs", source=0,
                        max_iterations=3)
    assert not result.converged
    assert result.num_iterations == 3


def test_max_iterations_zero_runs_no_iterations(road_graph):
    """``max_iterations=0`` must mean zero, not the options default.

    Regression test: ``max_iterations or default`` treated an explicit
    0 as falsy and silently ran the full default iteration budget.
    """
    partition = random_partition(road_graph, 8, seed=0)
    engine = BSPEngine(dgx1(8))
    result = engine.run(road_graph, partition, "bfs", source=0,
                        max_iterations=0)
    assert result.num_iterations == 0
    assert not result.converged


class _DroppingScheduler(Scheduler):
    """Broken policy that drops half of every fragment's work."""

    name = "dropper"

    def plan(self, iteration, fragment_frontiers, workloads, context):
        chunks = [
            WorkChunk(owner=i, worker=i, vertices=f.vertices,
                      edges=int(workloads[i] // 2))
            for i, f in enumerate(fragment_frontiers)
            if f
        ]
        return IterationPlan(chunks=chunks,
                             active_workers=list(range(context.num_workers)))


class _EmptyActiveScheduler(Scheduler):
    name = "noactive"

    def plan(self, iteration, fragment_frontiers, workloads, context):
        return IterationPlan(chunks=[], active_workers=[])


def test_work_conservation_enforced(skewed_graph, skewed_partition, source):
    engine = BSPEngine(dgx1(8), scheduler=_DroppingScheduler())
    with pytest.raises(EngineError, match="conserve"):
        engine.run(skewed_graph, skewed_partition, "bfs", source=source)


def test_plan_needs_active_workers(skewed_graph, skewed_partition, source):
    engine = BSPEngine(dgx1(8), scheduler=_EmptyActiveScheduler())
    with pytest.raises(EngineError):
        engine.run(skewed_graph, skewed_partition, "bfs", source=source)


def test_message_aggregation_reduces_serialization(skewed_graph,
                                                   skewed_partition,
                                                   source):
    on = BSPEngine(dgx1(8), options=EngineOptions(aggregate_messages=True))
    off = BSPEngine(dgx1(8), options=EngineOptions(aggregate_messages=False))
    with_agg = on.run(skewed_graph, skewed_partition, "sssp", source=source)
    without = off.run(skewed_graph, skewed_partition, "sssp", source=source)
    assert with_agg.breakdown.serialization < without.breakdown.serialization
    # semantics unchanged
    assert np.allclose(with_agg.values, without.values)


def test_direction_optimization_reduces_bfs_work(skewed_graph,
                                                 skewed_partition, source):
    do = BSPEngine(
        dgx1(8), options=EngineOptions(direction_optimized_bfs=True)
    ).run(skewed_graph, skewed_partition, "bfs", source=source)
    push = BSPEngine(
        dgx1(8), options=EngineOptions(direction_optimized_bfs=False)
    ).run(skewed_graph, skewed_partition, "bfs", source=source)
    do_edges = sum(r.frontier_edges for r in do.iterations)
    push_edges = sum(r.frontier_edges for r in push.iterations)
    assert do_edges < push_edges
    assert np.allclose(do.values, push.values)


def test_deterministic_runs(skewed_graph, skewed_partition, source):
    engine = BSPEngine(dgx1(8))
    a = engine.run(skewed_graph, skewed_partition, "bfs", source=source)
    b = engine.run(skewed_graph, skewed_partition, "bfs", source=source)
    assert a.total_seconds == b.total_seconds
    assert np.array_equal(a.values, b.values)


def test_algorithm_instance_accepted(skewed_graph, skewed_partition,
                                     source):
    from repro.algorithms import BFS

    engine = BSPEngine(dgx1(8))
    result = engine.run(skewed_graph, skewed_partition, BFS(),
                        source=source)
    assert result.algorithm == "bfs"
