"""Unit tests for the Frontier set type."""

import numpy as np
import pytest

from repro.runtime import Frontier


def test_construction_dedups_and_sorts():
    frontier = Frontier([5, 1, 3, 1, 5])
    assert frontier.vertices.tolist() == [1, 3, 5]
    assert frontier.size == 3
    assert len(frontier) == 3
    assert bool(frontier)


def test_empty():
    frontier = Frontier.empty()
    assert not frontier
    assert frontier.size == 0


def test_full():
    frontier = Frontier.full(4)
    assert frontier.vertices.tolist() == [0, 1, 2, 3]


def test_from_mask():
    mask = np.array([True, False, True, False])
    assert Frontier.from_mask(mask).vertices.tolist() == [0, 2]


def test_from_sorted_trusts_input():
    frontier = Frontier.from_sorted(np.array([2, 4, 9], dtype=np.int64))
    assert frontier.vertices.tolist() == [2, 4, 9]


def test_equality():
    assert Frontier([1, 2]) == Frontier([2, 1])
    assert Frontier([1]) != Frontier([2])
    with pytest.raises(TypeError):
        hash(Frontier([1]))


def test_set_algebra():
    a = Frontier([1, 2, 3])
    b = Frontier([3, 4])
    assert a.union(b) == Frontier([1, 2, 3, 4])
    assert a.intersection(b) == Frontier([3])
    assert a.difference(b) == Frontier([1, 2])
    assert a.union(Frontier.empty()) == a
    assert Frontier.empty().union(b) == b


def test_contains():
    frontier = Frontier([2, 4, 8])
    assert frontier.contains(4)
    assert not frontier.contains(5)
    assert not frontier.contains(100)


def test_work(tiny_graph):
    frontier = Frontier([0, 3])
    assert frontier.work(tiny_graph) == 3  # out-degrees 2 + 1
    assert Frontier.empty().work(tiny_graph) == 0


def test_split_by_owner():
    owner = np.array([0, 1, 0, 1, 2], dtype=np.int64)
    frontier = Frontier([0, 1, 3, 4])
    parts = frontier.split_by_owner(owner, 3)
    assert parts[0].vertices.tolist() == [0]
    assert parts[1].vertices.tolist() == [1, 3]
    assert parts[2].vertices.tolist() == [4]
    # disjoint union recovers the original
    merged = parts[0].union(parts[1]).union(parts[2])
    assert merged == frontier


def test_split_empty():
    owner = np.zeros(5, dtype=np.int64)
    parts = Frontier.empty().split_by_owner(owner, 2)
    assert len(parts) == 2
    assert all(not p for p in parts)


def test_vertices_readonly():
    frontier = Frontier([1, 2])
    with pytest.raises(ValueError):
        frontier.vertices[0] = 9


def test_repr_truncates():
    text = repr(Frontier(range(100)))
    assert "size=100" in text
    assert "..." in text
