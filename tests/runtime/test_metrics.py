"""Unit tests for timing records."""

import numpy as np
import pytest

from repro.runtime import IterationRecord, RunResult, TimeBreakdown


def make_record(iteration, busy, active, wall=None):
    busy = np.asarray(busy, dtype=np.float64)
    critical = busy[active].max() if active else 0.0
    stall = np.zeros_like(busy)
    stall[active] = critical - busy[active]
    breakdown = TimeBreakdown(compute=critical)
    return IterationRecord(
        iteration=iteration,
        frontier_size=10,
        frontier_edges=100,
        active_workers=list(active),
        busy_seconds=busy,
        stall_seconds=stall,
        wall_seconds=wall if wall is not None else breakdown.total,
        breakdown=breakdown,
    )


def test_breakdown_total_and_add():
    a = TimeBreakdown(compute=1.0, sync=0.5)
    b = TimeBreakdown(communication=2.0, overhead=0.25)
    a.add(b)
    assert a.total == pytest.approx(3.75)
    assert a.as_dict()["total"] == pytest.approx(3.75)
    assert a.scaled_ms()["compute"] == pytest.approx(1000.0)


def test_run_result_matrices():
    result = RunResult(
        engine="e", algorithm="a", graph_name="g", num_gpus=2,
        values=np.zeros(3),
    )
    result.iterations.append(make_record(0, [1.0, 3.0], [0, 1]))
    result.iterations.append(make_record(1, [2.0, 2.0], [0, 1]))
    busy = result.busy_matrix()
    stall = result.stall_matrix()
    assert busy.shape == (2, 2)
    assert busy[0].tolist() == [1.0, 3.0]
    assert stall[0].tolist() == [2.0, 0.0]
    assert result.num_iterations == 2


def test_empty_run_result():
    result = RunResult(
        engine="e", algorithm="a", graph_name="g", num_gpus=4,
        values=np.zeros(1),
    )
    assert result.busy_matrix().shape == (0, 4)
    assert result.stall_fraction() == 0.0
    assert result.total_seconds == 0.0


def test_stall_fraction():
    result = RunResult(
        engine="e", algorithm="a", graph_name="g", num_gpus=2,
        values=np.zeros(1),
    )
    # one worker busy 1s, the other stalls 1s -> 50% of worker time
    result.iterations.append(make_record(0, [0.0, 1.0], [0, 1]))
    assert result.stall_fraction() == pytest.approx(0.5)


def test_stall_fraction_ignores_evicted_workers():
    result = RunResult(
        engine="e", algorithm="a", graph_name="g", num_gpus=3,
        values=np.zeros(1),
    )
    # worker 2 is out of the group: contributes nothing
    record = make_record(0, [1.0, 1.0, 0.0], [0, 1])
    result.iterations.append(record)
    assert result.stall_fraction() == 0.0


def test_group_size_series():
    result = RunResult(
        engine="e", algorithm="a", graph_name="g", num_gpus=2,
        values=np.zeros(1),
    )
    result.iterations.append(make_record(0, [1.0, 1.0], [0, 1]))
    result.iterations.append(make_record(1, [1.0, 0.0], [0]))
    assert result.group_size_series() == [2, 1]


def test_total_ms(tiny_graph):
    result = RunResult(
        engine="e", algorithm="a", graph_name="g", num_gpus=1,
        values=np.zeros(1),
        breakdown=TimeBreakdown(compute=0.5),
    )
    assert result.total_ms == pytest.approx(500.0)
    assert "500.00 ms" in repr(result)
