"""Unit tests for the scheduler interface and the static policy."""

import numpy as np
import pytest

from repro.hardware import TimingModel, dgx1
from repro.partition import random_partition
from repro.runtime import Frontier, StaticScheduler
from repro.runtime.scheduler import RunContext


@pytest.fixture()
def context(skewed_graph, skewed_partition, topology8):
    return RunContext(
        graph=skewed_graph,
        partition=skewed_partition,
        timing=TimingModel(topology8),
        fragment_home=np.arange(8, dtype=np.int64),
        fragment_worker=np.arange(8, dtype=np.int64),
        algorithm_name="bfs",
    )


def make_frontiers(skewed_graph, skewed_partition, frontier):
    return [
        Frontier.from_sorted(part)
        for part in skewed_partition.split_frontier(frontier.vertices)
    ]


def test_static_plan_identity(skewed_graph, skewed_partition, context):
    frontier = Frontier(np.arange(0, 500, 7))
    fragments = make_frontiers(skewed_graph, skewed_partition, frontier)
    workloads = np.array([f.work(skewed_graph) for f in fragments])
    plan = StaticScheduler().plan(0, fragments, workloads, context)
    assert plan.active_workers == list(range(8))
    assert not plan.fsteal_applied
    for chunk in plan.chunks:
        assert chunk.owner == chunk.worker
        assert chunk.edges == workloads[chunk.owner]
        assert chunk.hub_edges == 0


def test_static_plan_skips_empty_fragments(skewed_graph,
                                           skewed_partition, context):
    # a frontier living entirely in one fragment
    target = skewed_partition.vertices_of(3)[:5]
    fragments = make_frontiers(
        skewed_graph, skewed_partition, Frontier(target)
    )
    workloads = np.array([f.work(skewed_graph) for f in fragments])
    plan = StaticScheduler().plan(0, fragments, workloads, context)
    owners = {chunk.owner for chunk in plan.chunks}
    assert owners == {3} or owners == set()  # degree-0 target possible
    # everyone still synchronizes (the LT problem!)
    assert plan.active_workers == list(range(8))


def test_static_plan_respects_reassigned_ownership(
    skewed_graph, skewed_partition, context
):
    # OSteal-style: fragment 5's work now belongs to worker 2
    context.fragment_worker[5] = 2
    frontier = Frontier(skewed_partition.vertices_of(5)[:20])
    fragments = make_frontiers(skewed_graph, skewed_partition, frontier)
    workloads = np.array([f.work(skewed_graph) for f in fragments])
    plan = StaticScheduler().plan(0, fragments, workloads, context)
    for chunk in plan.chunks:
        if chunk.owner == 5:
            assert chunk.worker == 2


def test_static_plan_emits_pull_mode_chunks(skewed_graph,
                                            skewed_partition, context):
    # effective workloads can be nonzero for empty-frontier fragments
    fragments = [Frontier.empty() for __ in range(8)]
    workloads = np.array([10, 0, 0, 5, 0, 0, 0, 0], dtype=np.int64)
    plan = StaticScheduler().plan(0, fragments, workloads, context)
    assert {c.owner for c in plan.chunks} == {0, 3}
    assert all(c.vertices.size == 0 for c in plan.chunks)


def test_run_context_num_workers(context):
    assert context.num_workers == 8
