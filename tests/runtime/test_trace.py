"""Unit tests for trace export and timeline rendering."""

import json

import numpy as np
import pytest

from repro.hardware import dgx1
from repro.runtime import BSPEngine
from repro.runtime.trace import (
    load_trace,
    render_timeline,
    save_trace,
    trace_records,
    utilization_report,
)


@pytest.fixture(scope="module")
def result(skewed_graph, skewed_partition, source):
    # session fixtures are visible from module fixtures via pytest
    return BSPEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )


def test_trace_records_shape(result):
    records = trace_records(result)
    assert len(records) == result.num_iterations
    first = records[0]
    assert first["iteration"] == 0
    assert len(first["busy_ms"]) == 8
    assert first["wall_ms"] == pytest.approx(
        result.iterations[0].wall_seconds * 1e3
    )
    json.dumps(records)  # JSON-serializable


def test_trace_roundtrip(tmp_path, result):
    path = tmp_path / "run.jsonl"
    save_trace(result, path)
    header, records = load_trace(path)
    assert header["engine"] == result.engine
    assert header["total_ms"] == pytest.approx(result.total_ms)
    assert len(records) == result.num_iterations
    assert records[-1]["iteration"] == result.num_iterations - 1


def test_load_empty_trace_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_trace(path)


def test_render_timeline(result):
    text = render_timeline(result, max_iterations=5, width=20)
    assert "busy" in text
    assert "gpu0" in text and "gpu7" in text
    assert "#" in text
    # bar width respected
    for line in text.splitlines():
        if line.strip().startswith("gpu"):
            bar = line.split(None, 1)[-1] if " " in line.strip() else ""
            assert len(bar.replace(" ", "")) <= 21


def test_render_timeline_empty():
    from repro.runtime import RunResult

    empty = RunResult(engine="e", algorithm="a", graph_name="g",
                      num_gpus=2, values=np.zeros(1))
    assert render_timeline(empty) == "(empty run)"


def test_utilization_report(result):
    report = utilization_report(result)
    assert len(report["per_gpu_busy_ms"]) == 8
    assert len(report["per_gpu_utilization"]) == 8
    assert all(0.0 <= u <= 1.0 for u in report["per_gpu_utilization"])
    assert report["iterations"] == result.num_iterations
    assert report["overall_stall_fraction"] == pytest.approx(
        result.stall_fraction()
    )
    json.dumps(report)
