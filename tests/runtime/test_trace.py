"""Unit tests for trace export and timeline rendering."""

import json

import numpy as np
import pytest

from repro.errors import ReproError, TraceFormatError
from repro.hardware import dgx1
from repro.obs import result_to_spans
from repro.runtime import BSPEngine
from repro.runtime.metrics import (
    IterationRecord,
    RunResult,
    TimeBreakdown,
)
from repro.runtime.trace import (
    load_trace,
    render_timeline,
    save_trace,
    trace_records,
    utilization_report,
)


@pytest.fixture(scope="module")
def result(skewed_graph, skewed_partition, source):
    # session fixtures are visible from module fixtures via pytest
    return BSPEngine(dgx1(8)).run(
        skewed_graph, skewed_partition, "bfs", source=source
    )


def test_trace_records_shape(result):
    records = trace_records(result)
    assert len(records) == result.num_iterations
    first = records[0]
    assert first["iteration"] == 0
    assert len(first["busy_ms"]) == 8
    assert first["wall_ms"] == pytest.approx(
        result.iterations[0].wall_seconds * 1e3
    )
    json.dumps(records)  # JSON-serializable


def test_trace_roundtrip(tmp_path, result):
    path = tmp_path / "run.jsonl"
    save_trace(result, path)
    header, records = load_trace(path)
    assert header["engine"] == result.engine
    assert header["total_ms"] == pytest.approx(result.total_ms)
    assert len(records) == result.num_iterations
    assert records[-1]["iteration"] == result.num_iterations - 1


def test_load_empty_trace_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_trace(path)


def test_load_malformed_trace_raises_trace_format_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"engine": "gum"}\n{"iteration": 0, "wall_')
    with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2"):
        load_trace(path)


def test_load_non_object_line_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"engine": "gum"}\n[1, 2, 3]\n')
    with pytest.raises(TraceFormatError, match="expected a JSON object"):
        load_trace(path)


def test_trace_format_error_is_both_repro_and_value_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ReproError):
        load_trace(path)
    with pytest.raises(ValueError):
        load_trace(path)


def test_render_timeline(result):
    text = render_timeline(result, max_iterations=5, width=20)
    assert "busy" in text
    assert "gpu0" in text and "gpu7" in text
    assert "#" in text
    # bar width respected
    for line in text.splitlines():
        if line.strip().startswith("gpu"):
            bar = line.split(None, 1)[-1] if " " in line.strip() else ""
            assert len(bar.replace(" ", "")) <= 21


def test_render_timeline_empty():
    empty = RunResult(engine="e", algorithm="a", graph_name="g",
                      num_gpus=2, values=np.zeros(1))
    assert render_timeline(empty) == "(empty run)"


def _synthetic_result():
    """One iteration, 3 GPUs: gpu0 busy+stall, gpu1 all busy, gpu2 out."""
    breakdown = TimeBreakdown(compute=0.75, communication=0.25)
    record = IterationRecord(
        iteration=0,
        frontier_size=10,
        frontier_edges=100,
        active_workers=[0, 1],
        busy_seconds=np.array([0.5, 1.0, 0.0]),
        stall_seconds=np.array([0.5, 0.0, 0.0]),
        wall_seconds=1.0,
        breakdown=breakdown,
        osteal_group_size=2,
    )
    result = RunResult(engine="gum", algorithm="bfs", graph_name="g",
                       num_gpus=3, values=np.zeros(1),
                       iterations=[record])
    result.breakdown.add(breakdown)
    return result


def test_render_timeline_normalizes_to_busy_plus_stall():
    text = render_timeline(_synthetic_result(), width=20)
    rows = {line.split()[0]: line for line in text.splitlines()
            if line.strip().startswith("gpu")}
    # gpu1's busy+stall (1.0) is the critical path: a full bar of '#'
    assert rows["gpu1"].count("#") == 20
    assert "." not in rows["gpu1"]
    # gpu0 is half busy, half stalled — against the same critical path
    assert rows["gpu0"].count("#") == 10
    assert rows["gpu0"].count(".") == 10


def test_render_timeline_marks_evicted_workers():
    text = render_timeline(_synthetic_result(), width=20)
    assert "'-' evicted" in text.splitlines()[0]
    rows = [line for line in text.splitlines()
            if line.strip().startswith("gpu2")]
    assert rows and rows[0].count("-") == 20
    assert "#" not in rows[0] and "." not in rows[0]


def _empty_result():
    return RunResult(engine="gum", algorithm="bfs", graph_name="g",
                     num_gpus=4, values=np.zeros(1))


def _two_group_result():
    """Two iterations whose OSteal group shrinks 2 -> 1."""
    records = []
    for iteration, (active, group) in enumerate([([0, 1], 2), ([0], 1)]):
        busy = np.zeros(2)
        busy[active] = 1.0
        records.append(IterationRecord(
            iteration=iteration, frontier_size=4, frontier_edges=16,
            active_workers=active, busy_seconds=busy,
            stall_seconds=np.zeros(2), wall_seconds=1.5,
            breakdown=TimeBreakdown(compute=1.0, communication=0.5),
            osteal_group_size=group,
        ))
    return RunResult(engine="gum", algorithm="bfs", graph_name="g",
                     num_gpus=2, values=np.zeros(1), iterations=records)


def test_result_to_spans_skips_evicted_workers():
    spans = result_to_spans(_synthetic_result())
    # gpu2 was evicted by OSteal: no busy/stall span may appear on its
    # track (render_timeline shows it as a '-' row instead)
    assert not any(span.track == "gpu2" for span in spans)
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    assert len(by_name["superstep"]) == 1
    # gpu1 is all busy: a busy span but no stall span
    assert {span.track for span in by_name["busy"]} == {"gpu0", "gpu1"}
    assert {span.track for span in by_name["stall"]} == {"gpu0"}
    # the stall span starts where the busy span ends
    gpu0_busy = next(s for s in by_name["busy"] if s.track == "gpu0")
    gpu0_stall = by_name["stall"][0]
    assert gpu0_stall.virtual_start == pytest.approx(
        gpu0_busy.virtual_start + gpu0_busy.virtual_dur
    )


def test_result_to_spans_emits_group_change_instants():
    spans = result_to_spans(_two_group_result())
    changes = [span for span in spans
               if span.name == "osteal.group_change"]
    assert len(changes) == 1
    assert changes[0].kind == "instant"
    assert changes[0].attrs["from"] == 2
    assert changes[0].attrs["to"] == 1
    assert changes[0].attrs["iteration"] == 1


def test_empty_run_exports_cleanly(tmp_path):
    empty = _empty_result()
    assert result_to_spans(empty) == []
    assert trace_records(empty) == []
    path = tmp_path / "empty-run.jsonl"
    save_trace(empty, path)
    header, records = load_trace(path)  # header-only file is valid
    assert header["num_gpus"] == 4
    assert records == []
    report = utilization_report(empty)
    assert report["iterations"] == 0
    assert report["per_gpu_busy_ms"] == [0.0] * 4


def test_empty_run_timeseries():
    series = _empty_result().timeseries()
    assert series["wall_ms"] == []
    assert series["critical_busy_ms"] == []
    json.dumps(series)


def test_load_truncated_tail_rejected(tmp_path, result):
    path = tmp_path / "truncated.jsonl"
    save_trace(result, path)
    text = path.read_text()
    path.write_text(text[:len(text) - 40])  # cut mid-record
    with pytest.raises(TraceFormatError, match="malformed trace line"):
        load_trace(path)


def test_load_trace_skips_blank_lines(tmp_path, result):
    path = tmp_path / "gaps.jsonl"
    save_trace(result, path)
    lines = path.read_text().splitlines()
    path.write_text("\n\n".join(lines) + "\n")
    header, records = load_trace(path)
    assert header["engine"] == result.engine
    assert len(records) == result.num_iterations


def test_utilization_report(result):
    report = utilization_report(result)
    assert len(report["per_gpu_busy_ms"]) == 8
    assert len(report["per_gpu_utilization"]) == 8
    assert all(0.0 <= u <= 1.0 for u in report["per_gpu_utilization"])
    assert report["iterations"] == result.num_iterations
    assert report["overall_stall_fraction"] == pytest.approx(
        result.stall_fraction()
    )
    json.dumps(report)
