"""The CI workflow lint guard (tools/check_ci.py).

Workflow jobs are copy-paste-prone: a job that omits
``timeout-minutes`` hangs for GitHub's six-hour default, and a job
that hand-rolls the setup preamble instead of using the
``.github/actions/setup-repro`` composite action drifts away from the
others. These tests prove the checker detects both failure modes and
that the committed workflows are currently clean.
"""

import pathlib
import subprocess
import sys
import textwrap

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_ci  # noqa: E402


def _check(source: str, tmp_path):
    file = tmp_path / "workflow.yml"
    file.write_text(textwrap.dedent(source))
    return check_ci.check_workflow(file)


CLEAN = """
    name: X
    on: push
    jobs:
      good:
        runs-on: ubuntu-latest
        timeout-minutes: 10
        steps:
          - uses: actions/checkout@v4
          - uses: ./.github/actions/setup-repro
          - run: python -m pytest -q
"""


def test_clean_job_passes(tmp_path):
    assert _check(CLEAN, tmp_path) == []


def test_missing_timeout_is_flagged(tmp_path):
    violations = _check(
        """
        jobs:
          hangs:
            runs-on: ubuntu-latest
            steps:
              - uses: actions/checkout@v4
              - uses: ./.github/actions/setup-repro
        """,
        tmp_path,
    )
    assert len(violations) == 1
    assert violations[0][1] == "hangs"
    assert "timeout-minutes" in violations[0][2]


def test_handrolled_preamble_is_flagged(tmp_path):
    violations = _check(
        """
        jobs:
          drifted:
            runs-on: ubuntu-latest
            timeout-minutes: 10
            steps:
              - uses: actions/checkout@v4
              - uses: actions/setup-python@v5
                with:
                  python-version: "3.11"
              - run: pip install -e .
        """,
        tmp_path,
    )
    assert len(violations) == 1
    assert "setup-repro" in violations[0][2]


def test_checkout_alone_is_not_enough(tmp_path):
    # checkout is a prerequisite of the composite action, not a
    # substitute for it
    violations = _check(
        """
        jobs:
          bare:
            runs-on: ubuntu-latest
            timeout-minutes: 5
            steps:
              - uses: actions/checkout@v4
              - run: python tools/check_ci.py
        """,
        tmp_path,
    )
    assert [v[1] for v in violations] == ["bare"]


def test_reusable_workflow_job_is_exempt(tmp_path):
    violations = _check(
        """
        jobs:
          fanout:
            uses: ./.github/workflows/other.yml
        """,
        tmp_path,
    )
    assert violations == []


def test_both_violations_report_separately(tmp_path):
    violations = _check(
        """
        jobs:
          worst:
            runs-on: ubuntu-latest
            steps:
              - run: "true"
        """,
        tmp_path,
    )
    assert len(violations) == 2


def test_unparseable_workflow_is_a_violation(tmp_path):
    file = tmp_path / "broken.yml"
    file.write_text("jobs: [this: {is: not\n")
    violations = check_ci.check_workflow(file)
    assert violations and "cannot parse" in violations[0][2]


def test_committed_workflows_are_clean(monkeypatch):
    monkeypatch.chdir(REPO)
    violations = check_ci.check_workflows(
        [REPO / ".github" / "workflows"]
    )
    formatted = "\n".join(
        f"{p}: {job}: {msg}" for p, job, msg in violations
    )
    assert not violations, "\n" + formatted


def test_cli_exit_codes(tmp_path):
    script = REPO / "tools" / "check_ci.py"
    clean = tmp_path / "clean.yml"
    clean.write_text(textwrap.dedent(CLEAN))
    dirty = tmp_path / "dirty.yml"
    dirty.write_text(
        "jobs:\n  bad:\n    runs-on: ubuntu-latest\n"
        "    steps:\n      - run: 'true'\n"
    )
    ok = subprocess.run(
        [sys.executable, str(script), str(clean)],
        capture_output=True, cwd=REPO,
    )
    assert ok.returncode == 0
    bad = subprocess.run(
        [sys.executable, str(script), str(dirty)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert bad.returncode == 1
    assert "bad" in bad.stdout
