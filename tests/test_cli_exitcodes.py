"""Exit-code contract: every subcommand turns ReproError into 2.

``main()`` promises that bad *inputs* (missing files, unknown refs,
malformed rules) exit with code 2 and a single ``error:`` line on
stderr — never a traceback, and never the gate codes 0/1 that CI
scripts branch on. Each case below forces a ReproError through a
different subcommand's code path.
"""

from pathlib import Path

import pytest

from repro.cli import main

REFERENCE_RUN = str(
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "reference" / "tx-bfs-4gpu"
)

# each entry: (id, argv builder taking the tmp registry dir)
CASES = [
    ("run-chaos-missing", lambda d: [
        "run", "--graph", "TX", "--algorithm", "bfs", "--gpus", "2",
        "--chaos", str(d / "absent-scenario.json"),
    ]),
    ("compare-chaos-missing", lambda d: [
        "compare", "--graph", "TX", "--algorithm", "bfs", "--gpus", "2",
        "--chaos", str(d / "absent-scenario.json"),
    ]),
    ("profile-chaos-missing", lambda d: [
        "profile", "--graph", "TX", "--algorithm", "bfs", "--gpus", "2",
        "--out", str(d / "trace.json"),
        "--chaos", str(d / "absent-scenario.json"),
    ]),
    ("bench-filter-matches-nothing", lambda d: [
        "bench", "--filter", "zzz-no-such-case",
        "--out", str(d / "bench.json"), "--no-compare",
    ]),
    ("runs-record-chaos-missing", lambda d: [
        "runs", "record", "--graph", "TX", "--algorithm", "bfs",
        "--gpus", "2", "--runs-dir", str(d),
        "--chaos", str(d / "absent-scenario.json"),
    ]),
    ("runs-show-unknown-ref", lambda d: [
        "runs", "show", "zzz-unknown", "--runs-dir", str(d),
    ]),
    ("runs-analyze-unknown-ref", lambda d: [
        "runs", "analyze", "zzz-unknown", "--runs-dir", str(d),
    ]),
    ("runs-diff-unknown-refs", lambda d: [
        "runs", "diff", "zzz-base", "zzz-current",
        "--runs-dir", str(d),
    ]),
    ("runs-gc-negative-keep", lambda d: [
        "runs", "gc", "--keep", "-1", "--runs-dir", str(d),
    ]),
    ("top-unknown-ref", lambda d: [
        "top", "zzz-unknown", "--no-ansi", "--runs-dir", str(d),
    ]),
    ("top-no-ref-no-stream", lambda d: [
        "top", "--no-ansi", "--runs-dir", str(d),
    ]),
    ("slo-check-missing-rules", lambda d: [
        "slo", "check", "latest",
        "--rules", str(d / "absent-rules.yaml"),
        "--runs-dir", str(d),
    ]),
]


@pytest.mark.parametrize(
    "argv_for", [c[1] for c in CASES], ids=[c[0] for c in CASES]
)
def test_bad_input_exits_2_with_one_line_error(
    argv_for, tmp_path, capsys
):
    assert main(argv_for(tmp_path)) == 2
    err = capsys.readouterr().err
    error_lines = [
        line for line in err.splitlines() if line.startswith("error: ")
    ]
    assert len(error_lines) == 1
    assert "Traceback" not in err


def test_gate_exit_codes_stay_distinct(tmp_path):
    """runs diff reserves 1 for 'regressed', 2 for 'bad input'.

    A missing base manifest must therefore exit 2, not 1 — this is
    what lets CI distinguish "perf regressed" from "the script is
    broken".
    """
    rc = main(["runs", "diff", "zzz-a", "zzz-b",
               "--runs-dir", str(tmp_path)])
    assert rc == 2


def test_committed_reference_passes_committed_rules(tmp_path, capsys):
    """The CI slo-gate contract: the rule file we ship must hold
    against the reference run we ship."""
    import json

    rules = str(Path(REFERENCE_RUN).parents[1]
                / "slo" / "reference.yaml")
    report_path = tmp_path / "slo-report.json"
    rc = main(["slo", "check", REFERENCE_RUN, "--rules", rules,
               "--report", str(report_path),
               "--runs-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK:" in out and "FAIL" not in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert report["schema"] == "repro-slo/1"


def test_slo_violation_exits_1_not_2(tmp_path, capsys):
    """A run that *fails* its SLOs is exit 1; only bad input is 2."""
    rules = tmp_path / "rules.json"
    rules.write_text(
        '{"schema": "repro-slo/1", '
        '"rules": [{"metric": "total_ms", "max": 30}]}'
    )
    rc = main(["slo", "check", REFERENCE_RUN,
               "--rules", str(rules), "--runs-dir", str(tmp_path)])
    capsys.readouterr()
    assert rc == 0

    tightened = tmp_path / "tight.json"
    tightened.write_text(
        '{"schema": "repro-slo/1", '
        '"rules": [{"metric": "total_ms", "max": 0.001}]}'
    )
    rc = main(["slo", "check", REFERENCE_RUN,
               "--rules", str(tightened), "--runs-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL total_ms" in out
    assert "VIOLATION" in out
