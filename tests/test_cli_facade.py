"""Unit tests for the CLI and the one-call facade."""

import json

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main, result_summary
from repro.errors import EngineError


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
def test_facade_defaults(skewed_graph, source, oracle_config):
    result = repro.run(
        skewed_graph, "bfs", source=source, gum_config=oracle_config
    )
    assert result.engine == "gum"
    assert result.num_gpus == 8
    assert result.converged


def test_facade_symmetrizes_for_wcc(skewed_graph, oracle_config):
    result = repro.run(skewed_graph, "wcc", num_gpus=4,
                       gum_config=oracle_config)
    assert result.algorithm == "wcc"
    # component labels must be canonical (min id per component)
    assert result.values.min() == 0.0


@pytest.mark.parametrize("engine", ["gunrock", "groute", "bsp"])
def test_facade_engines(engine, skewed_graph, source):
    result = repro.run(skewed_graph, "bfs", engine=engine,
                       num_gpus=4, source=source)
    assert result.converged


def test_facade_partitioner_and_errors(skewed_graph, source,
                                       oracle_config):
    result = repro.run(
        skewed_graph, "bfs", partitioner="seg", num_gpus=2,
        source=source, gum_config=oracle_config,
    )
    assert result.converged
    with pytest.raises(EngineError, match="unknown engine"):
        repro.run(skewed_graph, "bfs", engine="spark", source=source)


def test_facade_engines_agree(skewed_graph, source, oracle_config):
    gum = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                    gum_config=oracle_config)
    gunrock = repro.run(skewed_graph, "bfs", engine="gunrock",
                        num_gpus=4, source=source)
    assert np.allclose(gum.values, gunrock.values)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_datasets(capsys):
    assert main(["datasets", "--domain", "RN"]) == 0
    out = capsys.readouterr().out
    assert "TX" in out and "EU" in out
    assert "LJ" not in out


def test_cli_topology(capsys):
    assert main(["topology", "--gpus", "4"]) == 0
    out = capsys.readouterr().out
    assert "NVLink lanes" in out
    assert "ring" in out


def test_cli_run_text(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gunrock", "--gpus", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "virtual time" in out
    assert "gunrock/bfs on TX" in out


def test_cli_run_json(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "4",
        "--cost-model", "oracle", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engine"] == "gum"
    assert payload["converged"] is True
    assert payload["total_ms"] > 0
    assert set(payload["breakdown_ms"]) >= {"compute", "sync", "total"}


def test_cli_run_feature_switches(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "sssp",
        "--gpus", "4", "--cost-model", "oracle",
        "--no-fsteal", "--no-osteal", "--no-hub-cache", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stolen_edges"] == 0
    assert payload["min_group_size"] == 4


def test_cli_compare(capsys):
    code = main([
        "compare", "--graph", "TX", "--algorithm", "bfs",
        "--gpus", "4", "--cost-model", "oracle",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for engine in ("gum", "gunrock", "groute"):
        assert engine in out
    assert "best" in out


def test_cli_rejects_unknown_graph():
    with pytest.raises(SystemExit):
        main(["run", "--graph", "NOPE", "--algorithm", "bfs"])


def test_result_summary_fields(skewed_graph, source, oracle_config):
    result = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                       gum_config=oracle_config)
    summary = result_summary(result)
    assert summary["num_gpus"] == 4
    assert 0 <= summary["stall_fraction"] <= 1
    json.dumps(summary)  # must be JSON-serializable
    # original keys stay stable for downstream consumers
    assert {"engine", "algorithm", "graph", "num_gpus", "total_ms",
            "iterations", "converged", "stall_fraction", "breakdown_ms",
            "stolen_edges", "min_group_size",
            "real_decision_ms"} <= set(summary)
    # observability additions
    assert summary["fsteal_iterations"] == sum(
        1 for r in result.iterations if r.fsteal_applied
    )
    assert 1 <= summary["mean_group_size"] <= 4
    assert len(summary["per_gpu_utilization"]) == 4
    assert all(0.0 <= u <= 1.0 for u in summary["per_gpu_utilization"])


def test_cli_run_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "2", "--cost-model", "oracle",
        "--trace", str(trace), "--metrics", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert "engine.iterations" in payload["metrics"]
    data = json.load(open(trace))
    assert any(e["name"] == "superstep" for e in data["traceEvents"])


def test_cli_run_trace_jsonl(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gunrock", "--gpus", "2",
        "--trace", str(trace),
    ])
    assert code == 0
    lines = [json.loads(line)
             for line in trace.read_text().splitlines()]
    assert lines[0]["format"] == "repro-trace"
    assert any(line.get("name") == "superstep" for line in lines[1:])


def test_cli_profile(tmp_path, capsys):
    out = tmp_path / "p.trace.json"
    jsonl = tmp_path / "p.jsonl"
    code = main([
        "profile", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "4", "--cost-model", "oracle",
        "--out", str(out), "--jsonl", str(jsonl), "--timeline",
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "chrome trace" in text
    assert "gpu0" in text  # the --timeline Gantt
    data = json.load(open(out))
    names = {e["name"] for e in data["traceEvents"]}
    assert "superstep" in names and "run" in names
    assert jsonl.exists()


def test_cli_profile_json(tmp_path, capsys):
    out = tmp_path / "p.trace.json"
    code = main([
        "profile", "--graph", "TX", "--algorithm", "bfs",
        "--gpus", "2", "--cost-model", "oracle",
        "--out", str(out), "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"] == str(out)
    assert "engine.iterations" in payload["metrics"]
    assert "fsteal_iterations" in payload


def test_cli_compare_writes_per_engine_traces(tmp_path, capsys):
    trace = tmp_path / "cmp.trace.json"
    code = main([
        "compare", "--graph", "TX", "--algorithm", "bfs",
        "--gpus", "2", "--cost-model", "oracle",
        "--trace", str(trace), "--json",
    ])
    assert code == 0
    json.loads(capsys.readouterr().out)
    for engine in ("gum", "gunrock", "groute"):
        per_engine = tmp_path / f"cmp.trace.{engine}.json"
        assert per_engine.exists()
        json.load(open(per_engine))


def test_parser_version():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--version"])
