"""Unit tests for the CLI and the one-call facade."""

import json

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main, result_summary
from repro.errors import EngineError


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
def test_facade_defaults(skewed_graph, source, oracle_config):
    result = repro.run(
        skewed_graph, "bfs", source=source, gum_config=oracle_config
    )
    assert result.engine == "gum"
    assert result.num_gpus == 8
    assert result.converged


def test_facade_symmetrizes_for_wcc(skewed_graph, oracle_config):
    result = repro.run(skewed_graph, "wcc", num_gpus=4,
                       gum_config=oracle_config)
    assert result.algorithm == "wcc"
    # component labels must be canonical (min id per component)
    assert result.values.min() == 0.0


@pytest.mark.parametrize("engine", ["gunrock", "groute", "bsp"])
def test_facade_engines(engine, skewed_graph, source):
    result = repro.run(skewed_graph, "bfs", engine=engine,
                       num_gpus=4, source=source)
    assert result.converged


def test_facade_partitioner_and_errors(skewed_graph, source,
                                       oracle_config):
    result = repro.run(
        skewed_graph, "bfs", partitioner="seg", num_gpus=2,
        source=source, gum_config=oracle_config,
    )
    assert result.converged
    with pytest.raises(EngineError, match="unknown engine"):
        repro.run(skewed_graph, "bfs", engine="spark", source=source)


def test_facade_engines_agree(skewed_graph, source, oracle_config):
    gum = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                    gum_config=oracle_config)
    gunrock = repro.run(skewed_graph, "bfs", engine="gunrock",
                        num_gpus=4, source=source)
    assert np.allclose(gum.values, gunrock.values)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_datasets(capsys):
    assert main(["datasets", "--domain", "RN"]) == 0
    out = capsys.readouterr().out
    assert "TX" in out and "EU" in out
    assert "LJ" not in out


def test_cli_topology(capsys):
    assert main(["topology", "--gpus", "4"]) == 0
    out = capsys.readouterr().out
    assert "NVLink lanes" in out
    assert "ring" in out


def test_cli_run_text(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gunrock", "--gpus", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "virtual time" in out
    assert "gunrock/bfs on TX" in out


def test_cli_run_json(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "4",
        "--cost-model", "oracle", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engine"] == "gum"
    assert payload["converged"] is True
    assert payload["total_ms"] > 0
    assert set(payload["breakdown_ms"]) >= {"compute", "sync", "total"}


def test_cli_run_feature_switches(capsys):
    code = main([
        "run", "--graph", "TX", "--algorithm", "sssp",
        "--gpus", "4", "--cost-model", "oracle",
        "--no-fsteal", "--no-osteal", "--no-hub-cache", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stolen_edges"] == 0
    assert payload["min_group_size"] == 4


def test_cli_compare(capsys):
    code = main([
        "compare", "--graph", "TX", "--algorithm", "bfs",
        "--gpus", "4", "--cost-model", "oracle",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for engine in ("gum", "gunrock", "groute"):
        assert engine in out
    assert "best" in out


def test_cli_rejects_unknown_graph():
    with pytest.raises(SystemExit):
        main(["run", "--graph", "NOPE", "--algorithm", "bfs"])


def test_result_summary_fields(skewed_graph, source, oracle_config):
    result = repro.run(skewed_graph, "bfs", num_gpus=4, source=source,
                       gum_config=oracle_config)
    summary = result_summary(result)
    assert summary["num_gpus"] == 4
    assert 0 <= summary["stall_fraction"] <= 1
    json.dumps(summary)  # must be JSON-serializable


def test_parser_version():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--version"])
