"""Unit tests for the configuration module."""

import pytest

from repro import config


def test_constants_consistent():
    assert config.BYTES_PER_EDGE == 16 * config.EDGE_SCALE
    assert config.BYTES_PER_MESSAGE == 12 * config.EDGE_SCALE
    assert config.BYTES_PER_VERTEX == 16 * config.EDGE_SCALE
    assert config.EDGE_SCALE >= 1


def test_benchmark_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert config.benchmark_scale() == 1.0


def test_benchmark_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert config.benchmark_scale() == 2.5


@pytest.mark.parametrize("bad", ["zero", "-1", "0", ""])
def test_benchmark_scale_invalid_falls_back(monkeypatch, bad):
    monkeypatch.setenv("REPRO_SCALE", bad)
    assert config.benchmark_scale() == 1.0


def test_scaled(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.0")
    assert config.scaled(100) == 200
    monkeypatch.setenv("REPRO_SCALE", "0.001")
    assert config.scaled(100) == 16  # clamped at the minimum
    assert config.scaled(100, minimum=5) == 5
