"""Edge-case and failure-injection tests across the stack.

Degenerate inputs the engines must survive: empty graphs, singleton
graphs, all-isolated vertices, frontiers dying immediately, empty
fragments everywhere, and weight extremes.
"""

import numpy as np
import pytest

import repro
from repro.algorithms import make_algorithm
from repro.core import GumConfig, GumEngine
from repro.graph import from_edge_arrays, from_edges, star
from repro.hardware import dgx1, single_gpu
from repro.partition import Partition, random_partition
from repro.runtime import BSPEngine


def empty_graph(num_vertices=0):
    return from_edge_arrays(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        num_vertices=num_vertices, name="empty",
    )


ORACLE = GumConfig(cost_model="oracle")


def test_singleton_graph_bfs():
    graph = empty_graph(1)
    partition = random_partition(graph, 1, seed=0)
    result = BSPEngine(single_gpu()).run(graph, partition, "bfs",
                                         source=0)
    assert result.converged
    assert result.values.tolist() == [0.0]


def test_isolated_vertices_graph():
    graph = empty_graph(16)
    partition = random_partition(graph, 4, seed=0)
    result = GumEngine(dgx1(4), ORACLE).run(graph, partition, "bfs",
                                            source=3)
    assert result.converged
    assert np.isinf(result.values).sum() == 15
    # exactly one superstep: the frontier dies immediately
    assert result.num_iterations == 1


def test_wcc_on_edgeless_graph():
    graph = empty_graph(8)
    partition = random_partition(graph, 4, seed=0)
    result = BSPEngine(dgx1(4)).run(graph, partition, "wcc")
    assert np.array_equal(result.values, np.arange(8, dtype=np.float64))


def test_pr_on_edgeless_graph():
    graph = empty_graph(5)
    partition = random_partition(graph, 1, seed=0)
    result = BSPEngine(single_gpu()).run(graph, partition, "pr",
                                         max_rounds=3)
    # all-dangling: mass redistributes uniformly and converges
    assert result.values == pytest.approx([0.2] * 5)


def test_source_in_empty_fragment():
    """The source's fragment can be otherwise empty; others may have
    all the edges."""
    graph = star(32)
    owner = np.zeros(33, dtype=np.int64)
    owner[0] = 3  # the hub lives alone on fragment 3
    partition = Partition(graph, owner, 4)
    result = GumEngine(dgx1(4), ORACLE).run(graph, partition, "bfs",
                                            source=0)
    assert result.converged
    assert np.all(result.values[1:] == 1.0)


def test_gum_single_gpu_never_steals(skewed_weighted, source):
    partition = random_partition(skewed_weighted, 1, seed=0)
    result = GumEngine(single_gpu(), ORACLE).run(
        skewed_weighted, partition, "sssp", source=source
    )
    assert result.converged
    assert all(r.stolen_edges == 0 for r in result.iterations)
    assert all(r.num_active == 1 for r in result.iterations)


def test_zero_weight_edges():
    graph = from_edges([(0, 1, 0.0), (1, 2, 0.0), (2, 3, 1.0)])
    partition = random_partition(graph, 2, seed=0)
    result = BSPEngine(dgx1(2)).run(graph, partition, "sssp", source=0)
    assert result.values.tolist() == [0.0, 0.0, 0.0, 1.0]


def test_huge_weight_spread():
    graph = from_edges([(0, 1, 1e12), (0, 2, 1.0), (2, 1, 1.0)])
    partition = random_partition(graph, 2, seed=0)
    result = BSPEngine(dgx1(2)).run(graph, partition, "sssp", source=0)
    assert result.values[1] == 2.0  # the long way wins


def test_self_loop_tolerated():
    graph = from_edges([(0, 0), (0, 1)])
    partition = random_partition(graph, 2, seed=0)
    result = BSPEngine(dgx1(2)).run(graph, partition, "bfs", source=0)
    assert result.values.tolist() == [0.0, 1.0]


def test_run_facade_on_tiny_inputs():
    result = repro.run(star(3), "wcc", num_gpus=2, gum_config=ORACLE)
    assert np.all(result.values == 0.0)  # single component labelled 0


def test_algorithms_handle_empty_frontier_step(tiny_graph):
    """Calling step with an empty frontier is a no-op, not a crash."""
    for name in ("bfs", "sssp", "wcc"):
        algorithm = make_algorithm(name)
        state = algorithm.init(
            tiny_graph, **({"source": 0} if name != "wcc" else {})
        )
        state.frontier = type(state.frontier).empty()
        follow_up = algorithm.step(tiny_graph, state)
        assert not follow_up


def test_max_iterations_zero_like_budget(road_graph):
    partition = random_partition(road_graph, 4, seed=0)
    result = BSPEngine(dgx1(4)).run(road_graph, partition, "bfs",
                                    source=0, max_iterations=1)
    assert not result.converged
    assert result.num_iterations == 1
