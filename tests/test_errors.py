"""Tests for the exception hierarchy contract.

The library's promise: every error it raises is catchable as
:class:`ReproError` at an API boundary, and the dual-inheritance
special cases (:class:`TraceFormatError`, :class:`DegradedModeError`)
stay catchable under their legacy/base types too.
"""

import inspect

import pytest

from repro import errors
from repro.errors import (
    ConvergenceError,
    DegradedModeError,
    EngineError,
    FaultInjectionError,
    ReproError,
    TraceFormatError,
)


def _all_error_classes():
    return [
        obj for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


def test_every_error_is_a_repro_error():
    classes = _all_error_classes()
    assert len(classes) >= 12  # the hierarchy, not an accidental stub
    for cls in classes:
        assert issubclass(cls, ReproError), cls


@pytest.mark.parametrize("cls", _all_error_classes())
def test_each_subclass_caught_as_repro_error(cls):
    with pytest.raises(ReproError):
        raise cls("boom")


def test_every_error_has_a_docstring():
    for cls in _all_error_classes():
        assert cls.__doc__ and cls.__doc__.strip(), cls


def test_convergence_is_engine_error():
    assert issubclass(ConvergenceError, EngineError)


def test_degraded_mode_is_engine_error():
    # exceeding the fault budget is an execution failure, so callers
    # guarding engine.run with EngineError keep catching it
    assert issubclass(DegradedModeError, EngineError)
    with pytest.raises(EngineError):
        raise DegradedModeError("all workers dead")


def test_fault_injection_is_not_engine_error():
    # a scenario typo is a configuration problem, not a run failure
    assert not issubclass(FaultInjectionError, EngineError)


def test_trace_format_error_is_also_value_error():
    assert issubclass(TraceFormatError, ValueError)
    with pytest.raises(ValueError):
        raise TraceFormatError("not a trace")
    with pytest.raises(ReproError):
        raise TraceFormatError("not a trace")


def test_top_level_exports():
    import repro

    for name in ("ReproError", "FaultInjectionError", "DegradedModeError"):
        assert getattr(repro, name) is getattr(errors, name)
