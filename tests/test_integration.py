"""Cross-module integration tests.

The contract every experiment relies on: all three engine models agree
on *answers* for every algorithm, differ only in virtual time, and the
timing records are internally consistent.
"""

import numpy as np
import pytest

import repro
from repro.bench import Cell, run_cell
from repro.core import GumConfig


ENGINES = ("gum", "gunrock", "groute")


@pytest.fixture(scope="module")
def oracle():
    return GumConfig(cost_model="oracle")


@pytest.mark.parametrize("algorithm", ["bfs", "sssp", "wcc", "pr"])
def test_engines_agree_on_answers(algorithm, oracle):
    results = {
        engine: run_cell(Cell(engine, algorithm, "TX", 8),
                         gum_config=oracle)
        for engine in ENGINES
    }
    baseline = results["gum"].values
    for engine, result in results.items():
        if algorithm == "pr":
            assert np.abs(result.values - baseline).max() < 1e-6, engine
        else:
            assert np.allclose(result.values, baseline), engine
        assert result.converged, engine


@pytest.mark.parametrize("engine", ENGINES)
def test_breakdown_consistency(engine, oracle):
    result = run_cell(Cell(engine, "sssp", "TX", 8), gum_config=oracle)
    assert result.total_seconds == pytest.approx(
        sum(r.breakdown.total for r in result.iterations), rel=1e-9
    )
    for record in result.iterations:
        assert record.breakdown.compute >= 0
        assert record.breakdown.communication >= 0
        assert record.breakdown.sync >= 0
        assert record.wall_seconds == pytest.approx(
            record.breakdown.total, rel=1e-9
        )


def test_public_api_quickstart():
    """The README quickstart must work verbatim."""
    graph = repro.datasets.load("TX")
    partition = repro.random_partition(graph, 4)
    engine = repro.GumEngine(
        repro.dgx1(4), config=repro.GumConfig(cost_model="oracle")
    )
    result = engine.run(graph, partition, "bfs", source=0)
    assert result.total_ms > 0
    assert 0.0 <= result.stall_fraction() <= 1.0


def test_gum_beats_static_bsp_on_long_tail(oracle):
    gum = run_cell(Cell("gum", "sssp", "TX", 8), gum_config=oracle)
    static = run_cell(Cell("bsp", "sssp", "TX", 8))
    assert gum.total_seconds < static.total_seconds
    assert np.allclose(gum.values, static.values)


def test_scaling_direction(oracle):
    """More GPUs must help a heavy workload under GUM."""
    one = run_cell(Cell("gum", "pr", "OR", 1), gum_config=oracle)
    eight = run_cell(Cell("gum", "pr", "OR", 8), gum_config=oracle)
    assert eight.total_seconds < one.total_seconds
    speedup = one.total_seconds / eight.total_seconds
    # slightly super-linear is possible: per-chunk frontier slices have
    # narrower degree ranges, so the device model prices them cheaper
    assert 2.0 < speedup <= 8.6


def test_runs_are_reproducible(oracle):
    a = run_cell(Cell("gum", "sssp", "TX", 8), gum_config=oracle)
    b = run_cell(Cell("gum", "sssp", "TX", 8), gum_config=oracle)
    assert a.total_seconds == b.total_seconds
    assert a.group_size_series() == b.group_size_series()


def test_version_exposed():
    assert repro.__version__ == "1.0.0"
