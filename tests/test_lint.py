"""The redefinition lint guard (tools/check_redefinitions.py).

A duplicated method silently shadows its first body — the bug class
behind the twice-defined ``GreedySolver._refine``.  These tests keep
the whole tree clean and prove the checker actually detects the
pattern it guards against.
"""

import pathlib
import subprocess
import sys
import textwrap

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_redefinitions  # noqa: E402


def _findings_for(source: str, tmp_path):
    file = tmp_path / "snippet.py"
    file.write_text(textwrap.dedent(source))
    return check_redefinitions.check_file(file)


def test_detects_duplicate_method(tmp_path):
    findings = _findings_for(
        """
        class Solver:
            def _refine(self):
                return 1

            def _refine(self):
                return 2
        """,
        tmp_path,
    )
    assert len(findings) == 1
    __, line, name, first = findings[0]
    assert name == "_refine"
    assert first < line


def test_detects_module_level_duplicate(tmp_path):
    findings = _findings_for(
        "def f():\n    pass\n\ndef f():\n    pass\n", tmp_path
    )
    assert [f[2] for f in findings] == ["f"]


def test_allows_overload_and_property_pairs(tmp_path):
    findings = _findings_for(
        """
        from typing import overload

        class Box:
            @property
            def value(self):
                return self._v

            @value.setter
            def value(self, v):
                self._v = v

        @overload
        def g(x: int) -> int: ...
        @overload
        def g(x: str) -> str: ...
        def g(x):
            return x
        """,
        tmp_path,
    )
    assert findings == []


def test_allows_conditional_fallbacks(tmp_path):
    findings = _findings_for(
        """
        try:
            def fast():
                return 1
        except ImportError:
            def fast():
                return 0
        """,
        tmp_path,
    )
    assert findings == []


def test_repo_tree_is_clean():
    findings = check_redefinitions.check_paths(
        [REPO / "src", REPO / "tests", REPO / "benchmarks",
         REPO / "tools"]
    )
    formatted = "\n".join(
        f"{p}:{line}: redefinition of {name!r}"
        for p, line, name, __ in findings
    )
    assert not findings, "\n" + formatted


def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def a():\n    pass\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def a():\n    pass\n\ndef a():\n    pass\n")
    script = REPO / "tools" / "check_redefinitions.py"
    ok = subprocess.run(
        [sys.executable, str(script), str(clean)], capture_output=True
    )
    assert ok.returncode == 0
    bad = subprocess.run(
        [sys.executable, str(script), str(dirty)],
        capture_output=True, text=True,
    )
    assert bad.returncode == 1
    assert "redefinition of 'a'" in bad.stdout
