"""Round-trip tests for binary persistence (graphs, partitions, models)."""

import numpy as np
import pytest

from repro.core import PolynomialSGDModel, collect_training_data
from repro.errors import CostModelError, GraphError, PartitionError
from repro.graph import rmat, road_network, with_random_weights
from repro.graph.io_npz import (
    load_graph,
    load_partition,
    save_graph,
    save_partition,
)
from repro.partition import random_partition


def test_graph_roundtrip(tmp_path, skewed_graph):
    path = tmp_path / "g.npz"
    save_graph(skewed_graph, path)
    loaded = load_graph(path)
    assert loaded.num_vertices == skewed_graph.num_vertices
    assert np.array_equal(loaded.indptr, skewed_graph.indptr)
    assert np.array_equal(loaded.indices, skewed_graph.indices)
    assert loaded.directed == skewed_graph.directed
    assert loaded.name == skewed_graph.name
    assert loaded.weights is None


def test_weighted_graph_roundtrip(tmp_path, skewed_weighted):
    path = tmp_path / "w.npz"
    save_graph(skewed_weighted, path)
    loaded = load_graph(path)
    assert np.array_equal(loaded.weights, skewed_weighted.weights)


def test_graph_bad_archive(tmp_path):
    path = tmp_path / "bogus.npz"
    np.savez(path, junk=np.zeros(3))
    with pytest.raises(GraphError, match="not a repro graph"):
        load_graph(path)


def test_partition_roundtrip(tmp_path, skewed_graph, skewed_partition):
    path = tmp_path / "p.npz"
    save_partition(skewed_partition, path)
    loaded = load_partition(path, skewed_graph)
    assert np.array_equal(loaded.owner, skewed_partition.owner)
    assert loaded.num_fragments == skewed_partition.num_fragments
    assert loaded.name == skewed_partition.name


def test_partition_wrong_graph_rejected(tmp_path, skewed_partition):
    path = tmp_path / "p.npz"
    save_partition(skewed_partition, path)
    other = rmat(6, 4, seed=0)
    with pytest.raises(PartitionError, match="vertices"):
        load_partition(path, other)


def test_partition_bad_archive(tmp_path, skewed_graph):
    path = tmp_path / "bogus.npz"
    np.savez(path, junk=np.zeros(3))
    with pytest.raises(PartitionError, match="not a repro partition"):
        load_partition(path, skewed_graph)


@pytest.fixture(scope="module")
def small_training_set():
    graphs = [rmat(8, 8, seed=1), road_network(6, 40, seed=2)]
    return collect_training_data(graphs, algorithms=("bfs",),
                                 num_fragments=4)


def test_cost_model_roundtrip(tmp_path, small_training_set):
    features, costs = small_training_set
    model = PolynomialSGDModel(degree=2, epochs=30)
    model.fit(features, costs)
    path = tmp_path / "model.npz"
    model.save(path)
    loaded = PolynomialSGDModel.load(path)
    assert np.allclose(loaded.predict(features), model.predict(features))
    assert loaded._degree == 2


def test_cost_model_save_requires_fit(tmp_path):
    with pytest.raises(CostModelError, match="unfitted"):
        PolynomialSGDModel().save(tmp_path / "x.npz")


def test_cost_model_bad_archive(tmp_path):
    path = tmp_path / "bogus.npz"
    np.savez(path, junk=np.zeros(3))
    with pytest.raises(CostModelError, match="unsupported"):
        PolynomialSGDModel.load(path)


def test_loaded_model_usable_in_engine(tmp_path, small_training_set):
    import repro

    features, costs = small_training_set
    model = PolynomialSGDModel(degree=2, epochs=30)
    model.fit(features, costs)
    path = tmp_path / "model.npz"
    model.save(path)
    loaded = PolynomialSGDModel.load(path)
    graph = with_random_weights(rmat(9, 6, seed=3), seed=4)
    result = repro.run(
        graph, "sssp", num_gpus=4, source=0,
        gum_config=repro.GumConfig(cost_model=loaded),
    )
    assert result.converged
