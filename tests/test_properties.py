"""Property-based tests (hypothesis) on core structures and invariants.

These probe the load-bearing invariants of the system with randomized
inputs: CSR construction round-trips, partition cover/disjointness,
frontier set algebra, FSteal feasibility and its never-worse-than-static
guarantee, Algorithm 1's conservation, reduction-tree ownership
validity, and algorithm correctness against independent oracles.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import make_algorithm
from repro.algorithms.validate import reference_bfs, reference_sssp
from repro.core import FStealProblem, GreedySolver, LPRoundingSolver
from repro.core.fsteal import select_vertices
from repro.core.reduction_tree import ReductionTree
from repro.graph import from_edge_arrays, gini_coefficient
from repro.graph.gather import gather_edges
from repro.hardware import dgx1
from repro.partition import Partition
from repro.runtime import Frontier

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
MAX_V = 40


@st.composite
def edge_lists(draw, max_vertices=MAX_V, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


@st.composite
def fsteal_instances(draw, max_n=6):
    n = draw(st.integers(min_value=1, max_value=max_n))
    loads = draw(
        st.lists(st.integers(0, 5000), min_size=n, max_size=n)
    )
    cost_cells = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0),
            min_size=n * n, max_size=n * n,
        )
    )
    costs = 1e-9 * np.asarray(cost_cells).reshape(n, n)
    # forbid a few off-diagonal pairs (homes always stay allowed)
    forbid = draw(
        st.lists(st.booleans(), min_size=n * n, max_size=n * n)
    )
    mask = np.asarray(forbid).reshape(n, n)
    np.fill_diagonal(mask, False)
    costs[mask] = np.inf
    return FStealProblem(costs, np.asarray(loads, dtype=np.int64))


# ----------------------------------------------------------------------
# Graph properties
# ----------------------------------------------------------------------
@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip(data):
    n, src, dst = data
    graph = from_edge_arrays(src, dst, num_vertices=n)
    out_src, out_dst = graph.edge_array()
    # the edge multiset is preserved
    original = sorted(zip(src.tolist(), dst.tolist()))
    rebuilt = sorted(zip(out_src.tolist(), out_dst.tolist()))
    assert original == rebuilt
    assert int(graph.out_degrees().sum()) == src.size
    assert int(graph.in_degrees().sum()) == src.size


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_gather_covers_frontier_edges(data):
    n, src, dst = data
    graph = from_edge_arrays(src, dst, num_vertices=n)
    frontier = np.unique(src)[:10]
    sources, destinations, __ = gather_edges(graph, frontier)
    expected = int(graph.out_degrees(frontier).sum()) if frontier.size else 0
    assert sources.size == expected
    assert destinations.size == expected


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
             max_size=200)
)
@settings(max_examples=60, deadline=None)
def test_gini_bounds(values):
    gini = gini_coefficient(np.asarray(values))
    assert -1e-9 <= gini <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Partition properties
# ----------------------------------------------------------------------
@given(edge_lists(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_partition_invariants(data, k, seed):
    n, src, dst = data
    graph = from_edge_arrays(src, dst, num_vertices=n)
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, k, size=n, dtype=np.int64)
    partition = Partition(graph, owner, k)
    # cover: fragment vertex sets partition V
    union = np.concatenate(
        [partition.vertices_of(f) for f in range(k)]
    )
    assert np.array_equal(np.sort(union), np.arange(n))
    # edges are conserved
    assert int(partition.fragment_edges().sum()) == graph.num_edges
    # frontier split is a disjoint cover of the frontier
    frontier = np.unique(rng.integers(0, n, size=min(n, 12)))
    parts = partition.split_frontier(frontier)
    merged = np.sort(np.concatenate(parts))
    assert np.array_equal(merged, frontier)


# ----------------------------------------------------------------------
# Frontier algebra
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(0, 100), max_size=40),
    st.lists(st.integers(0, 100), max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_frontier_set_laws(a_items, b_items):
    a, b = Frontier(a_items), Frontier(b_items)
    union = a.union(b)
    inter = a.intersection(b)
    diff = a.difference(b)
    assert union.size == a.size + b.size - inter.size
    assert diff.union(inter) == a
    assert union == b.union(a)
    assert inter == b.intersection(a)


# ----------------------------------------------------------------------
# FSteal properties
# ----------------------------------------------------------------------
@given(fsteal_instances())
@settings(max_examples=40, deadline=None)
def test_fsteal_solvers_feasible_and_bounded(problem):
    static = np.zeros_like(problem.costs, dtype=np.int64)
    np.fill_diagonal(static, problem.workloads)
    static_objective = problem.objective(static)
    finite = problem.costs[np.isfinite(problem.costs)]
    # integral rounding may add up to one edge per fragment
    rounding_slack = (
        problem.num_fragments * float(finite.max()) if finite.size else 0.0
    )
    greedy = GreedySolver().solve(problem)
    problem.validate_assignment(greedy.assignment)
    # greedy refines from the no-steal seed: never worse than static
    assert greedy.objective <= static_objective + 1e-15
    lp = LPRoundingSolver().solve(problem)
    problem.validate_assignment(lp.assignment)
    assert lp.objective <= static_objective + rounding_slack + 1e-15


@given(st.integers(0, 10_000), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_select_vertices_conserves(total_seed, split_seed):
    from repro.graph import rmat

    graph = rmat(8, 6, seed=3)
    rng = np.random.default_rng(total_seed)
    frontier = Frontier(
        np.unique(rng.integers(0, graph.num_vertices, size=30))
    )
    total = frontier.work(graph)
    rng2 = np.random.default_rng(split_seed)
    weights = rng2.random(4) + 0.01
    quotas = np.floor(total * weights / weights.sum()).astype(np.int64)
    quotas[0] += total - quotas.sum()
    chunks = select_vertices(graph, 0, frontier, quotas)
    assert sum(c.edges for c in chunks) == total
    covered = (
        np.sort(np.concatenate([c.vertices for c in chunks]))
        if chunks
        else np.empty(0, dtype=np.int64)
    )
    if total > 0:
        assert np.array_equal(covered, frontier.vertices)


# ----------------------------------------------------------------------
# Reduction tree properties
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_reduction_tree_ownership_valid(num_gpus, group):
    if group > num_gpus:
        group = num_gpus
    tree = ReductionTree(dgx1(num_gpus))
    ownership = tree.ownership(group)
    active = tree.active_workers(group)
    assert len(active) == group
    assert set(np.unique(ownership)).issubset(set(active))


# ----------------------------------------------------------------------
# Algorithms vs oracles on random graphs
# ----------------------------------------------------------------------
@given(edge_lists(max_vertices=30, max_edges=80),
       st.integers(min_value=0, max_value=29))
@settings(max_examples=25, deadline=None)
def test_bfs_random_graphs(data, source_pick):
    n, src, dst = data
    graph = from_edge_arrays(src, dst, num_vertices=n)
    source = source_pick % n
    algorithm = make_algorithm("bfs")
    state = algorithm.init(graph, source=source)
    while state.frontier and state.iteration < 500:
        state.frontier = algorithm.step(graph, state)
        state.iteration += 1
    assert np.allclose(state.values, reference_bfs(graph, source))


@given(edge_lists(max_vertices=25, max_edges=60),
       st.integers(min_value=0, max_value=24),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_sssp_random_weighted_graphs(data, source_pick, weight_seed):
    n, src, dst = data
    graph = from_edge_arrays(src, dst, num_vertices=n)
    from repro.graph import with_random_weights

    weighted = with_random_weights(graph, seed=weight_seed)
    source = source_pick % n
    algorithm = make_algorithm("sssp")
    state = algorithm.init(weighted, source=source)
    while state.frontier and state.iteration < 1000:
        state.frontier = algorithm.step(weighted, state)
        state.iteration += 1
    assert np.allclose(state.values, reference_sssp(weighted, source))


# ----------------------------------------------------------------------
# All four FSteal backends: feasibility + mutual agreement
# ----------------------------------------------------------------------
@st.composite
def fsteal_rect_instances(draw, max_frag=7, max_work=5):
    """Rectangular instances probing the solver edge cases:

    zero-workload rows, forbidden (inf-cost) cells up to whole columns,
    and the single-worker degenerate case.
    """
    n_frag = draw(st.integers(min_value=1, max_value=max_frag))
    n_work = draw(st.integers(min_value=1, max_value=max_work))
    cells = draw(
        st.lists(st.floats(min_value=0.2, max_value=5.0),
                 min_size=n_frag * n_work, max_size=n_frag * n_work)
    )
    costs = 1e-9 * np.asarray(cells).reshape(n_frag, n_work)
    forbid = draw(
        st.lists(st.booleans(), min_size=n_frag * n_work,
                 max_size=n_frag * n_work)
    )
    costs[np.asarray(forbid).reshape(n_frag, n_work)] = np.inf
    for i in range(n_frag):  # every fragment keeps one allowed worker
        if not np.isfinite(costs[i]).any():
            costs[i, draw(st.integers(0, n_work - 1))] = 1e-9
    loads = np.asarray(
        draw(st.lists(st.integers(0, 2000), min_size=n_frag,
                      max_size=n_frag)),
        dtype=np.int64,
    )
    zero_rows = draw(
        st.lists(st.booleans(), min_size=n_frag, max_size=n_frag)
    )
    loads[np.asarray(zero_rows)] = 0
    return FStealProblem(costs, loads)


@given(fsteal_rect_instances())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_all_solvers_feasible_and_agree(problem):
    """Every backend returns a feasible plan; objectives agree.

    ``highs`` solves the MILP exactly, so it sets the optimum; the
    heuristics must land within 1.5x of it (measured worst case over
    randomized instances is ~1.23x for greedy, ~1.19x for lp/bnb).
    """
    from repro.core import SOLVERS, make_solver

    objectives = {}
    for name in sorted(SOLVERS):
        solution = make_solver(name).solve(problem)
        problem.validate_assignment(solution.assignment)
        assert np.all(solution.assignment.sum(axis=1)
                      == problem.workloads)
        objectives[name] = solution.objective
    optimal = objectives["highs"]
    if problem.workloads.sum() == 0:
        assert all(obj == 0.0 for obj in objectives.values())
        return
    assert optimal >= 0.0
    for name, obj in objectives.items():
        assert obj >= optimal - 1e-15, (
            f"{name} beat the exact optimum: {obj} < {optimal}"
        )
        assert obj <= 1.5 * optimal + 1e-15, (
            f"{name} is {obj / max(optimal, 1e-30):.2f}x optimal"
        )
