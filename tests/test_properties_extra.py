"""Additional property-based tests (hypothesis) on newer components.

Covers the reactive-stealing simulation's conservation/termination,
persistence round-trips, reduction trees over random topologies, and
the engine's work-conservation invariant under arbitrary frontiers.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import PeekStealScheduler
from repro.core.reduction_tree import ReductionTree
from repro.graph import from_edge_arrays
from repro.graph.io_npz import load_graph, save_graph
from repro.hardware import LinkSpec, Topology


@st.composite
def workload_vectors(draw, max_workers=8):
    n = draw(st.integers(min_value=1, max_value=max_workers))
    loads = draw(
        st.lists(st.integers(0, 200_000), min_size=n, max_size=n)
    )
    return np.asarray(loads, dtype=np.int64)


@given(workload_vectors(),
       st.integers(min_value=1, max_value=5_000),
       st.floats(min_value=1e-6, max_value=1e-2))
@settings(max_examples=60, deadline=None)
def test_peeksteal_simulation_invariants(workloads, min_steal, latency):
    scheduler = PeekStealScheduler(
        steal_latency_seconds=latency, min_steal_edges=min_steal
    )
    quotas, steals = scheduler._simulate(workloads, workloads.size)
    # conservation: every fragment's edges are fully assigned
    assert np.array_equal(quotas.sum(axis=1), workloads)
    # no negative quotas, bounded steal count (termination evidence)
    assert np.all(quotas >= 0)
    assert steals <= 64 * workloads.size


@st.composite
def random_topologies(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    links = []
    for a in range(n):
        for b in range(a + 1, n):
            lanes = draw(st.integers(min_value=0, max_value=2))
            if lanes:
                links.append(LinkSpec(a, b, lanes))
    return Topology(n, links, name="random")


@given(random_topologies(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_reduction_tree_on_random_topologies(topology, group):
    group = min(group, topology.num_gpus)
    tree = ReductionTree(topology)
    ownership = tree.ownership(group)
    active = tree.active_workers(group)
    assert len(active) == group
    assert set(np.unique(ownership)).issubset(set(active))
    for worker in active:
        assert ownership[worker] == worker
    # folding is monotone: smaller groups are subsets
    if group > 1:
        smaller = set(tree.active_workers(group - 1))
        assert smaller.issubset(set(active))


@given(random_topologies())
@settings(max_examples=30, deadline=None)
def test_effective_bandwidth_dominates_direct(topology):
    direct = topology.direct_bandwidth_matrix()
    effective = topology.effective_bandwidth_matrix()
    assert np.all(effective >= direct - 1e-9)
    assert np.allclose(effective, effective.T)


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=60))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weighted = draw(st.booleans())
    weights = None
    if weighted:
        weights = np.asarray(
            draw(st.lists(
                st.floats(min_value=0.1, max_value=10.0),
                min_size=m, max_size=m,
            ))
        )
    return from_edge_arrays(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices=n, weights=weights,
    )


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_graph_npz_roundtrip(tmp_path_factory, graph):
    path = tmp_path_factory.mktemp("npz") / "g.npz"
    save_graph(graph, path)
    loaded = load_graph(path)
    assert np.array_equal(loaded.indptr, graph.indptr)
    assert np.array_equal(loaded.indices, graph.indices)
    if graph.weights is None:
        assert loaded.weights is None
    else:
        assert np.allclose(loaded.weights, graph.weights)
