"""The telemetry-name lint guard (tools/check_span_names.py).

Span and metric names are a public contract — `repro top`, SLO rule
files, and Prometheus scrapes all key off them. The checker forces
every literal name emitted by the library to appear backticked in
docs/observability.md's name tables; these tests prove it detects the
failure modes it guards against and that the tree is currently clean.
"""

import pathlib
import subprocess
import sys
import textwrap

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_span_names  # noqa: E402


def _names_for(source: str, tmp_path):
    file = tmp_path / "snippet.py"
    file.write_text(textwrap.dedent(source))
    return check_span_names.emitted_names(file)


def test_collects_literal_names(tmp_path):
    names = _names_for(
        """
        def go(tracer, metrics):
            with tracer.span("superstep", cat="engine"):
                metrics.counter("engine.iterations").inc()
            tracer.instant("osteal.group_change")
            metrics.timeseries("engine.wall_ms_series").append(1.0)
        """,
        tmp_path,
    )
    assert sorted(n for _, _, n, _ in names) == [
        "engine.iterations", "engine.wall_ms_series",
        "osteal.group_change", "superstep",
    ]
    assert all(not is_prefix for _, _, _, is_prefix in names)


def test_fstring_name_becomes_a_prefix(tmp_path):
    names = _names_for(
        """
        def go(tracer, kind):
            tracer.instant(f"chaos.{kind}", cat="chaos")
        """,
        tmp_path,
    )
    assert names[0][2] == "chaos."
    assert names[0][3] is True


def test_dynamic_names_are_out_of_scope(tmp_path):
    names = _names_for(
        """
        def go(metrics, name):
            metrics.counter(name).inc()
            metrics.gauge(f"{name}.depth").set(1)
        """,
        tmp_path,
    )
    assert names == []


def test_undocumented_matching():
    tokens = {"superstep", "chaos.kill_worker"}
    findings = [
        (pathlib.Path("x.py"), 1, "superstep", False),
        (pathlib.Path("x.py"), 2, "chaos.", True),
        (pathlib.Path("x.py"), 3, "mystery.metric", False),
    ]
    missing = check_span_names.undocumented(findings, tokens)
    assert [m[2] for m in missing] == ["mystery.metric"]


def test_repo_tree_is_documented(monkeypatch):
    monkeypatch.chdir(REPO)
    missing = check_span_names.undocumented(
        check_span_names.collect_names([REPO / "src" / "repro"]),
        check_span_names.documented_tokens(),
    )
    formatted = "\n".join(
        f"{p}:{line}: undocumented {name!r}"
        for p, line, name, __ in missing
    )
    assert not missing, "\n" + formatted


def test_cli_exit_codes(tmp_path):
    script = REPO / "tools" / "check_span_names.py"
    clean = tmp_path / "clean.py"
    clean.write_text("def a(t):\n    t.span('superstep')\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def a(t):\n    t.span('zz.unheard.of')\n")
    ok = subprocess.run(
        [sys.executable, str(script), str(clean)],
        capture_output=True, cwd=REPO,
    )
    assert ok.returncode == 0
    bad = subprocess.run(
        [sys.executable, str(script), str(dirty)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert bad.returncode == 1
    assert "zz.unheard.of" in bad.stdout
