#!/usr/bin/env python3
"""Keep the CI workflows on the shared rails.

Two failure modes creep into GitHub Actions workflows as jobs are
copy-pasted and then drift:

* a job without ``timeout-minutes`` hangs for GitHub's six-hour
  default when something deadlocks, burning runner quota and delaying
  every queued PR behind it;
* a job that re-spells the setup preamble by hand (setup-python,
  pip cache, install) instead of using the shared
  ``.github/actions/setup-repro`` composite action silently diverges —
  a Python bump or an install-flag fix lands in four jobs and misses
  the fifth.

This checker parses every workflow under ``.github/workflows`` and
requires each job to declare ``timeout-minutes`` and each job that
defines steps to invoke the composite action. ``reusable-workflow``
jobs (``uses:`` at the job level, no ``steps``) only need the
timeout where GitHub allows one, so they are exempt from the action
requirement.

Usage: ``python tools/check_ci.py [workflow.yml ...]`` (defaults to
``.github/workflows``). Exits non-zero on any violation.
"""

from __future__ import annotations

import pathlib
import sys
from typing import List, Tuple

import yaml

#: the shared preamble every step-defining job must run
SETUP_ACTION = "./.github/actions/setup-repro"

WORKFLOWS_DIR = pathlib.Path(".github/workflows")

# (file, job-name, message)
Violation = Tuple[pathlib.Path, str, str]


def _job_uses_action(job: dict, action: str = SETUP_ACTION) -> bool:
    """True when some step invokes the composite setup action."""
    for step in job.get("steps") or []:
        uses = step.get("uses") if isinstance(step, dict) else None
        # version pins ("@...") would be meaningless on a local path
        # action but tolerate them rather than miscount the job
        if isinstance(uses, str) and uses.split("@")[0] == action:
            return True
    return False


def check_workflow(path: pathlib.Path) -> List[Violation]:
    """All violations in one workflow file."""
    try:
        data = yaml.safe_load(path.read_text())
    except yaml.YAMLError as exc:
        return [(path, "-", f"cannot parse: {exc}")]
    if not isinstance(data, dict):
        return [(path, "-", "not a workflow mapping")]
    violations: List[Violation] = []
    jobs = data.get("jobs")
    if not isinstance(jobs, dict):
        return [(path, "-", "workflow declares no jobs")]
    for name, job in jobs.items():
        if not isinstance(job, dict):
            violations.append((path, name, "job is not a mapping"))
            continue
        if "uses" in job and "steps" not in job:
            # reusable-workflow call: no steps of its own and GitHub
            # rejects timeout-minutes here; nothing to check
            continue
        if "timeout-minutes" not in job:
            violations.append((
                path, name,
                "missing timeout-minutes (GitHub's default is 6 "
                "hours; every job must bound its own runtime)",
            ))
        if not _job_uses_action(job):
            violations.append((
                path, name,
                f"does not use the {SETUP_ACTION} composite action "
                "(shared setup preamble; see "
                ".github/actions/setup-repro/action.yml)",
            ))
    return violations


def check_workflows(paths) -> List[Violation]:
    """Violations across the given workflow files/directories."""
    violations: List[Violation] = []
    for target in paths:
        target = pathlib.Path(target)
        files = (
            sorted(p for p in target.iterdir()
                   if p.suffix in (".yml", ".yaml"))
            if target.is_dir() else [target]
        )
        for file in files:
            violations.extend(check_workflow(file))
    return violations


def main(argv: List[str]) -> int:
    targets = argv or [WORKFLOWS_DIR]
    missing = [t for t in targets if not pathlib.Path(t).exists()]
    if missing:
        print(f"not found: {', '.join(map(str, missing))} "
              "(run from the repo root)", file=sys.stderr)
        return 1
    violations = check_workflows(targets)
    for path, job, message in violations:
        print(f"{path}: job {job!r}: {message}")
    if violations:
        print(f"{len(violations)} CI workflow violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
