#!/usr/bin/env python3
"""Flag silent def/class redefinitions (the F811 failure mode).

A duplicated method definition silently shadows the first one — that is
exactly how ``GreedySolver._refine`` grew two bodies where only the
second ever ran.  ruff would catch this as F811, but the toolchain must
work from the standard library alone, so this is a small AST checker
covering the case we care about: two ``def``/``class`` statements
binding the same name in the same straight-line body.

Decorated redefinitions that are idiomatic Python are ignored:
``@typing.overload`` stubs, ``@prop.setter``/``getter``/``deleter``
pairs, and ``@singledispatch .register`` variants.  Conditional
redefinitions (``if``/``try`` fallbacks) live in nested bodies and are
naturally out of scope.

Usage: ``python tools/check_redefinitions.py [path ...]``
(defaults to ``src tests benchmarks tools``).  Exits non-zero when a
redefinition is found.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Tuple

#: decorator name fragments that legitimise a repeated binding
ALLOWED_DECORATORS = ("overload", "setter", "getter", "deleter",
                      "register")

Finding = Tuple[pathlib.Path, int, str, int]


def _decorator_names(node: ast.AST) -> Iterator[str]:
    for decorator in getattr(node, "decorator_list", []):
        for sub in ast.walk(decorator):
            if isinstance(sub, ast.Name):
                yield sub.id
            elif isinstance(sub, ast.Attribute):
                yield sub.attr


def _is_allowed(node: ast.AST) -> bool:
    return any(
        allowed in name
        for name in _decorator_names(node)
        for allowed in ALLOWED_DECORATORS
    )


def _check_body(path: pathlib.Path, body: list) -> Iterator[Finding]:
    defined = {}  # name -> (line, had allowed decorator)
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            allowed = _is_allowed(stmt)
            previous = defined.get(stmt.name)
            # a redefinition is fine when either side is an allowed
            # decorator pattern: the stubs of an @overload chain AND
            # the plain implementation that closes it
            if previous and not allowed and not previous[1]:
                yield (path, stmt.lineno, stmt.name, previous[0])
            defined[stmt.name] = (stmt.lineno, allowed)


def check_file(path: pathlib.Path) -> List[Finding]:
    """All redefinition findings in one Python source file."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        raise SystemExit(f"{path}: cannot parse: {exc}") from exc
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef,
             ast.AsyncFunctionDef),
        ):
            findings.extend(_check_body(path, node.body))
    return findings


def check_paths(paths) -> List[Finding]:
    """All findings under the given files/directories."""
    findings: List[Finding] = []
    for root in paths:
        root = pathlib.Path(root)
        files = (
            sorted(root.rglob("*.py")) if root.is_dir()
            else [root] if root.suffix == ".py"
            else []
        )
        for file in files:
            findings.extend(check_file(file))
    return findings


def main(argv: List[str]) -> int:
    targets = argv or ["src", "tests", "benchmarks", "tools"]
    targets = [t for t in targets if pathlib.Path(t).exists()]
    findings = check_paths(targets)
    for path, line, name, first in findings:
        print(
            f"{path}:{line}: redefinition of {name!r} "
            f"(first defined at line {first})"
        )
    if findings:
        print(f"{len(findings)} redefinition(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
