#!/usr/bin/env python3
"""Keep docs/observability.md's telemetry vocabulary complete.

Dashboards, SLO rule files, and ``repro top`` all key off span and
metric *names*. A name that ships without appearing in the docs' name
tables is telemetry nobody can discover — and a renamed span silently
breaks every saved rule file that referenced the old name. This
checker walks the library source for emission call sites
(``tracer.span/virtual_span/instant`` and
``metrics.counter/gauge/histogram/timeseries``) whose name argument is
a string literal and requires each name to appear backticked in
``docs/observability.md``.

f-string names (``f"chaos.{kind}"``) are checked by their literal
prefix: some backticked token must start with that prefix (the docs
list ``chaos.kill_worker`` etc. explicitly, or a ``chaos.*`` family
entry). Purely dynamic names (a variable) are out of scope.

``src/repro/bench`` is excluded: its registries are synthetic
microbenchmark payloads, not product telemetry.

Usage: ``python tools/check_span_names.py [src-path ...]``
(defaults to ``src/repro``). Exits non-zero when an undocumented name
is found.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import List, Tuple

#: tracer/metrics methods whose first argument is a telemetry name
EMIT_METHODS = {
    "span", "virtual_span", "instant",
    "counter", "gauge", "histogram", "timeseries",
}

#: source subtrees whose emissions are bench fixtures, not telemetry
EXCLUDED_PARTS = ("bench",)

DOCS = pathlib.Path("docs/observability.md")

# (file, line, name, is_prefix)
Finding = Tuple[pathlib.Path, int, str, bool]


def _literal_name(node: ast.AST):
    """The name argument as (text, is_prefix), or None if dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for part in node.values:
            if isinstance(part, ast.Constant):
                prefix += str(part.value)
            else:
                break
        if prefix:
            return prefix, True
    return None


def emitted_names(path: pathlib.Path) -> List[Finding]:
    """All literal telemetry names emitted by one source file."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        raise SystemExit(f"{path}: cannot parse: {exc}") from exc
    found: List[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in EMIT_METHODS
                and node.args):
            continue
        name = _literal_name(node.args[0])
        if name is not None:
            found.append((path, node.lineno, name[0], name[1]))
    return found


def collect_names(paths) -> List[Finding]:
    """Emission sites under the given files/directories."""
    found: List[Finding] = []
    for root in paths:
        root = pathlib.Path(root)
        files = (
            sorted(root.rglob("*.py")) if root.is_dir()
            else [root] if root.suffix == ".py"
            else []
        )
        for file in files:
            if any(part in EXCLUDED_PARTS for part in file.parts):
                continue
            found.extend(emitted_names(file))
    return found


def documented_tokens(docs_path: pathlib.Path = DOCS) -> set:
    """Every backticked token in the observability docs."""
    return set(re.findall(r"`([^`\n]+)`", docs_path.read_text()))


def undocumented(findings, tokens) -> List[Finding]:
    """Emission sites whose name no documented token covers."""
    missing: List[Finding] = []
    for finding in findings:
        _, _, name, is_prefix = finding
        if is_prefix:
            covered = any(t.startswith(name) for t in tokens)
        else:
            covered = name in tokens
        if not covered:
            missing.append(finding)
    return missing


def main(argv: List[str]) -> int:
    targets = argv or ["src/repro"]
    targets = [t for t in targets if pathlib.Path(t).exists()]
    if not DOCS.exists():
        print(f"{DOCS} not found (run from the repo root)",
              file=sys.stderr)
        return 1
    missing = undocumented(collect_names(targets), documented_tokens())
    for path, line, name, is_prefix in missing:
        kind = "name prefix" if is_prefix else "name"
        print(f"{path}:{line}: telemetry {kind} {name!r} "
              f"is not documented in {DOCS}")
    if missing:
        print(f"{len(missing)} undocumented telemetry name(s); add "
              f"them to the name tables in {DOCS}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
